package kernels

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/resilience-models/dvf/internal/analytic"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/patterns"
	"github.com/resilience-models/dvf/internal/trace"
)

// FT is the 1-D FFT kernel: an in-place, iterative radix-2 Cooley-Tukey
// transform over a complex array X, matching the paper's "segment of codes
// from the NPB FT benchmark that conducts a 1D FFT computation". X is the
// single major data structure; its accesses follow the template-based
// pattern (a bit-reversal permutation followed by log2(n) butterfly passes,
// each a full traversal of the array).
//
// Twiddle factors are computed on the fly, so the working set is exactly
// the 16-byte-per-element array — the paper's "33KB" working set at n=2048.
type FT struct {
	N      int // transform length (power of two)
	Rounds int // forward transforms performed; 0 means 1
}

// NewFT returns an FT kernel of length n.
func NewFT(n int) *FT { return &FT{N: n} }

// Name implements Kernel.
func (*FT) Name() string { return "FT" }

// Class implements Kernel (Table II).
func (*FT) Class() string { return "Spectral methods" }

// PatternSummary implements Kernel (Table II).
func (*FT) PatternSummary() string { return "Template-based" }

// Validate reports configuration errors.
func (f *FT) Validate() error {
	if f.N < 4 || f.N&(f.N-1) != 0 {
		return fmt.Errorf("fft: n=%d must be a power of two >= 4", f.N)
	}
	if f.Rounds < 0 {
		return fmt.Errorf("fft: rounds=%d must be non-negative", f.Rounds)
	}
	return nil
}

const ftElemSize = 16 // complex128

// Run executes the transform(s).
func (f *FT) Run(sink trace.Consumer) (*RunInfo, error) {
	return f.run(sink, nil)
}

// RunInjected implements Injectable: it executes the transform with a
// single bit flip armed against the array X.
func (f *FT) RunInjected(fault Fault, sink trace.Consumer) (*RunInfo, error) {
	if err := fault.Validate(); err != nil {
		return nil, err
	}
	return runGuarded(func() (*RunInfo, error) { return f.run(sink, &fault) })
}

func (f *FT) run(sink trace.Consumer, fault *Fault) (*RunInfo, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	rounds := f.Rounds
	if rounds == 0 {
		rounds = 1
	}
	n := f.N
	var inj *injector
	x := make([]complex128, n)
	if fault != nil {
		if fault.Structure != "X" {
			return nil, fmt.Errorf("fft: no injectable structure %q", fault.Structure)
		}
		inj = newInjector(sink, *fault, complex128Flipper(x))
		sink = inj
	}
	m := newMemory(sink)
	reg := m.alloc("X", int64(n)*ftElemSize)
	for i := range x {
		x[i] = complex(math.Sin(0.3*float64(i)), 0)
	}

	logN := bits.TrailingZeros(uint(n))
	var flops int64
	for round := 0; round < rounds; round++ {
		// Bit-reversal permutation.
		for i := 0; i < n; i++ {
			j := int(bits.Reverse32(uint32(i)) >> (32 - logN))
			if i < j {
				m.mem.LoadN(reg, i, ftElemSize)
				m.mem.LoadN(reg, j, ftElemSize)
				x[i], x[j] = x[j], x[i]
				m.mem.StoreN(reg, i, ftElemSize)
				m.mem.StoreN(reg, j, ftElemSize)
			}
		}
		// Butterfly passes.
		for size := 2; size <= n; size *= 2 {
			half := size / 2
			ang := -2 * math.Pi / float64(size)
			wStep := complex(math.Cos(ang), math.Sin(ang))
			for start := 0; start < n; start += size {
				w := complex(1, 0)
				for j := 0; j < half; j++ {
					a := start + j
					b := a + half
					m.mem.LoadN(reg, a, ftElemSize)
					m.mem.LoadN(reg, b, ftElemSize)
					t := w * x[b]
					x[b] = x[a] - t
					x[a] = x[a] + t
					m.mem.StoreN(reg, a, ftElemSize)
					m.mem.StoreN(reg, b, ftElemSize)
					w *= wStep
					flops += 10
				}
			}
		}
	}

	if inj != nil {
		if err := inj.finish(); err != nil {
			return nil, err
		}
	}
	var checksum float64
	for _, v := range x {
		checksum += real(v)*real(v) + imag(v)*imag(v)
	}
	return &RunInfo{
		Kernel: f.Name(),
		Structures: []Structure{
			{Name: "X", Bytes: int64(n) * ftElemSize, ID: int32(reg.ID)},
		},
		Refs:  m.mem.Refs(),
		Flops: flops,
		Measured: map[string]float64{
			"n":      float64(n),
			"passes": float64(logN + 1),
			"rounds": float64(rounds),
		},
		Checksum: checksum,
	}, nil
}

// Models returns the template-based model for X: the exact bit-reversal +
// butterfly access template through the two-step reuse-distance algorithm.
// This captures the paper's Figure 5(e) behaviour — once the cache cannot
// hold the whole array, every pass misses and the access count (and DVF)
// jumps suddenly.
func (f *FT) Models(info *RunInfo) ([]ModelSpec, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	rounds := f.Rounds
	if rounds == 0 {
		rounds = 1
	}
	n := f.N
	logN := bits.TrailingZeros(uint(n))
	bytesX := int64(n) * ftElemSize

	est := patterns.Func{
		Name:  "template",
		Bytes: bytesX,
		F: func(c cache.Config) (float64, error) {
			ctr := patterns.NewTemplateCounter(c.Lines(), false)
			visit := func(elem int) {
				first := int64(elem) * ftElemSize / int64(c.LineSize)
				last := (int64(elem)*ftElemSize + ftElemSize - 1) / int64(c.LineSize)
				for b := first; b <= last; b++ {
					ctr.Visit(b)
				}
			}
			for round := 0; round < rounds; round++ {
				for i := 0; i < n; i++ {
					j := int(bits.Reverse32(uint32(i)) >> (32 - logN))
					if i < j {
						visit(i)
						visit(j)
						visit(i)
						visit(j)
					}
				}
				for size := 2; size <= n; size *= 2 {
					half := size / 2
					for start := 0; start < n; start += size {
						for j := 0; j < half; j++ {
							visit(start + j)
							visit(start + j + half)
							visit(start + j)
							visit(start + j + half)
						}
					}
				}
			}
			return float64(ctr.Misses()), nil
		},
	}
	return []ModelSpec{{Structure: "X", Estimator: est}}, nil
}

// AccessPattern implements PatternSource: per round, the bit-reversal
// permutation followed by the log2(n) butterfly passes over X.
func (f *FT) AccessPattern() (*analytic.Descriptor, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	rounds := f.Rounds
	if rounds == 0 {
		rounds = 1
	}
	return &analytic.Descriptor{
		Kernel: f.Name(),
		Regions: []analytic.Region{
			{Name: "X", Bytes: int64(f.N) * ftElemSize, ElemSize: ftElemSize},
		},
		Phases: []analytic.Phase{analytic.Repeat{Count: rounds, Body: []analytic.Phase{
			analytic.BitReverse{Region: "X", N: f.N},
			analytic.Butterflies{Region: "X", N: f.N},
		}}},
	}, nil
}
