package kernels

import (
	"math"

	"github.com/resilience-models/dvf/internal/trace"
)

// The traced linear-algebra layer: vectors and dense matrices whose every
// element access is reported to the trace memory. The CG/PCG kernels are
// written against these types so the algorithm code reads like the
// pseudocode of Algorithms 4 and 5 while still emitting a faithful
// reference stream.

// tvec is an instrumented dense vector.
type tvec struct {
	data []float64
	reg  trace.Region
	mem  *trace.Memory
}

func newTvec(m *memory, name string, n int) *tvec {
	return &tvec{
		data: make([]float64, n),
		reg:  m.alloc(name, int64(n)*elem8),
		mem:  m.mem,
	}
}

func (v *tvec) len() int { return len(v.data) }

func (v *tvec) load(i int) float64 {
	v.mem.LoadN(v.reg, i, elem8)
	return v.data[i]
}

func (v *tvec) store(i int, x float64) {
	v.data[i] = x
	v.mem.StoreN(v.reg, i, elem8)
}

// tmat is an instrumented dense row-major matrix.
type tmat struct {
	data []float64
	n    int // square dimension
	reg  trace.Region
	mem  *trace.Memory
}

func newTmat(m *memory, name string, n int) *tmat {
	return &tmat{
		data: make([]float64, n*n),
		n:    n,
		reg:  m.alloc(name, int64(n)*int64(n)*elem8),
		mem:  m.mem,
	}
}

func (a *tmat) load(i, j int) float64 {
	a.mem.LoadN(a.reg, i*a.n+j, elem8)
	return a.data[i*a.n+j]
}

// set writes without tracing; used during untimed initialization, which the
// paper excludes from the analysis ("we focus on the major computation
// parts ... and ignore initialization and finalization phases").
func (a *tmat) set(i, j int, x float64) {
	a.data[i*a.n+j] = x
}

// matVec computes dst = a * src with the canonical dense access order:
// per row, the row of a is streamed and src is fully re-traversed.
func matVec(dst, src *tvec, a *tmat) int64 {
	n := a.n
	var flops int64
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += a.load(i, j) * src.load(j)
		}
		dst.store(i, sum)
		flops += int64(2 * n)
	}
	return flops
}

// dot returns the inner product of two traced vectors.
func dot(a, b *tvec) (float64, int64) {
	sum := 0.0
	for i := 0; i < a.len(); i++ {
		sum += a.load(i) * b.load(i)
	}
	return sum, int64(2 * a.len())
}

// axpy computes y = y + alpha*x.
func axpy(alpha float64, x, y *tvec) int64 {
	for i := 0; i < y.len(); i++ {
		y.store(i, y.load(i)+alpha*x.load(i))
	}
	return int64(2 * y.len())
}

// xpay computes y = x + alpha*y (the CG direction update p = r + beta*p).
func xpay(x *tvec, alpha float64, y *tvec) int64 {
	for i := 0; i < y.len(); i++ {
		y.store(i, x.load(i)+alpha*y.load(i))
	}
	return int64(2 * y.len())
}

// norm2 returns the Euclidean norm of the untraced backing data (a pure
// convergence check, not part of the modeled computation).
func norm2(v *tvec) float64 {
	sum := 0.0
	for _, x := range v.data {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// thomasSolve solves the symmetric tridiagonal system
// tridiag(off, diag, off) * x = e_col into dst, untraced. It is used once
// per column to build the dense preconditioner inverse M^-1 for PCG; the
// paper's PCG likewise treats forming M as setup outside the modeled loop.
func thomasSolve(diag, off float64, n, col int, dst []float64) {
	c := make([]float64, n) // modified superdiagonal
	d := make([]float64, n) // modified rhs
	b := make([]float64, n) // rhs = unit vector e_col
	b[col] = 1
	c[0] = off / diag
	d[0] = b[0] / diag
	for i := 1; i < n; i++ {
		m := diag - off*c[i-1]
		if i < n-1 {
			c[i] = off / m
		}
		d[i] = (b[i] - off*d[i-1]) / m
	}
	dst[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		dst[i] = d[i] - c[i]*dst[i+1]
	}
}
