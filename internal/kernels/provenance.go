package kernels

import "reflect"

// PatternProvenance names the source location and concrete configuration
// from which a kernel's hand-written access pattern can be re-derived by
// static extraction (internal/extract). It is the bridge between a live
// kernel value and an extraction target: the import path and type name
// locate the traced Run method, and the scalar maps reproduce the
// receiver's configuration field by field.
type PatternProvenance struct {
	ImportPath string
	TypeName   string
	Method     string
	Ints       map[string]int64
	Floats     map[string]float64
	Bools      map[string]bool
}

// Provenance reports where k's access pattern comes from, or false when k
// does not implement PatternSource or its configuration is not expressible
// as scalar fields (anything but integers, floats and booleans).
func Provenance(k Kernel) (*PatternProvenance, bool) {
	if _, ok := k.(PatternSource); !ok {
		return nil, false
	}
	rv := reflect.ValueOf(k)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return nil, false
	}
	elem := rv.Elem()
	if elem.Kind() != reflect.Struct {
		return nil, false
	}
	st := elem.Type()
	p := &PatternProvenance{
		ImportPath: st.PkgPath(),
		TypeName:   st.Name(),
		Method:     "Run",
		Ints:       make(map[string]int64),
		Floats:     make(map[string]float64),
		Bools:      make(map[string]bool),
	}
	for f := 0; f < st.NumField(); f++ {
		fv := elem.Field(f)
		name := st.Field(f).Name
		switch fv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			p.Ints[name] = fv.Int()
		case reflect.Float32, reflect.Float64:
			p.Floats[name] = fv.Float()
		case reflect.Bool:
			p.Bools[name] = fv.Bool()
		default:
			return nil, false
		}
	}
	return p, true
}
