package kernels

import (
	"fmt"
	"math"

	"github.com/resilience-models/dvf/internal/patterns"
	"github.com/resilience-models/dvf/internal/trace"
)

// PCG is the preconditioned conjugate gradient of Algorithm 5, the
// algorithm-optimization use case of Section V-A. Relative to CG it adds
// the auxiliary matrix M (the preconditioner inverse M^-1) and the
// auxiliary vector z, trading a larger working set and more per-iteration
// memory traffic for faster convergence.
//
// The preconditioner is the exact inverse of the tridiagonal part of the
// CG test matrix. That inverse is symmetric, so M is stored packed (upper
// triangle only, n(n+1)/2 elements) and applied with a symmetric packed
// matrix-vector product — halving M's footprint relative to a naive dense
// copy, as production solvers do. Because the remaining perturbation in A
// is small relative to the diagonal shift, PCG converges in a handful of
// iterations at every problem size, while plain CG's iteration count grows
// with n — the trade-off the paper's Figure 6 explores.
type PCG struct {
	N        int
	MaxIters int
	Tol      float64
}

// NewPCG returns a PCG kernel with a fixed iteration count.
func NewPCG(n, iters int) *PCG {
	return &PCG{N: n, MaxIters: iters}
}

// NewPCGToConvergence returns a PCG kernel that iterates to the relative
// residual tolerance tol.
func NewPCGToConvergence(n int, tol float64) *PCG {
	return &PCG{N: n, MaxIters: 2 * n, Tol: tol}
}

// Name implements Kernel.
func (*PCG) Name() string { return "PCG" }

// Class implements Kernel.
func (*PCG) Class() string { return "Sparse linear algebra" }

// PatternSummary implements Kernel.
func (*PCG) PatternSummary() string { return "Template+Reuse+Streaming" }

// Validate reports configuration errors.
func (p *PCG) Validate() error {
	if p.N <= 1 {
		return fmt.Errorf("pcg: n=%d must exceed 1", p.N)
	}
	if p.MaxIters < 0 {
		return fmt.Errorf("pcg: max iterations %d must be non-negative", p.MaxIters)
	}
	return nil
}

// packedSym is an instrumented symmetric matrix stored as its upper
// triangle in row-major packed layout: element (i, j) with i <= j lives at
// index i*n - i*(i-1)/2 + (j-i).
type packedSym struct {
	data []float64
	n    int
	reg  trace.Region
	mem  *trace.Memory
}

func newPackedSym(m *memory, name string, n int) *packedSym {
	count := n * (n + 1) / 2
	return &packedSym{
		data: make([]float64, count),
		n:    n,
		reg:  m.alloc(name, int64(count)*elem8),
		mem:  m.mem,
	}
}

func (s *packedSym) bytes() int64 { return int64(len(s.data)) * elem8 }

func (s *packedSym) idx(i, j int) int { return i*s.n - i*(i-1)/2 + (j - i) }

func (s *packedSym) set(i, j int, v float64) { s.data[s.idx(i, j)] = v }

func (s *packedSym) load(i, j int) float64 {
	e := s.idx(i, j)
	s.mem.LoadN(s.reg, e, elem8)
	return s.data[e]
}

// symMatVec computes dst = S * src for the packed symmetric matrix: one
// streaming pass over the triangle, with src and dst each re-traversed
// once per row.
func symMatVec(dst, src *tvec, s *packedSym) int64 {
	n := s.n
	for i := 0; i < n; i++ {
		dst.data[i] = 0
	}
	var flops int64
	for i := 0; i < n; i++ {
		sum := dst.data[i]
		ri := src.load(i)
		for j := i; j < n; j++ {
			v := s.load(i, j)
			sum += v * src.data[j]
			if j > i {
				src.mem.LoadN(src.reg, j, elem8)
				dst.data[j] += v * ri
				dst.mem.StoreN(dst.reg, j, elem8)
			}
			flops += 4
		}
		dst.store(i, sum)
	}
	return flops
}

// Run executes Algorithm 5.
func (p *PCG) Run(sink trace.Consumer) (*RunInfo, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxIters := p.MaxIters
	if maxIters == 0 {
		maxIters = 2 * p.N
	}
	m := newMemory(sink)
	n := p.N
	a := newTmat(m, "A", n)
	minv := newPackedSym(m, "M", n)
	x := newTvec(m, "x", n)
	pv := newTvec(m, "p", n)
	r := newTvec(m, "r", n)
	z := newTvec(m, "z", n)
	q := newTvec(m, "q", n)

	fillTestMatrix(a)
	// Build M^-1 = inverse of the tridiagonal part, column by column via
	// the Thomas algorithm (untraced setup, like the paper's).
	sigma := sigmaShift(n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		thomasSolve(2+sigma, -1, n, j, col)
		for i := 0; i <= j; i++ {
			minv.set(i, j, col[i])
		}
	}

	fillRHS(r.data) // x0 = 0  =>  r0 = b
	bNorm := norm2(r)

	var flops int64
	flops += symMatVec(z, r, minv) // z0 = M^-1 r0
	for i := 0; i < n; i++ {
		pv.data[i] = z.data[i] // p0 = z0
		pv.mem.StoreN(pv.reg, i, elem8)
	}
	rz, fl := dot(r, z)
	flops += fl

	iters := 0
	for iters < maxIters {
		flops += matVec(q, pv, a)
		pq, fl := dot(pv, q)
		flops += fl
		if pq == 0 {
			break
		}
		alpha := rz / pq
		flops += axpy(alpha, pv, x)
		flops += axpy(-alpha, q, r)
		iters++
		if p.Tol > 0 {
			res := 0.0
			for _, v := range r.data {
				res += v * v
			}
			if math.Sqrt(res) <= p.Tol*bNorm {
				break
			}
		}
		flops += symMatVec(z, r, minv) // z = M^-1 r
		rzNew, fl := dot(r, z)
		flops += fl
		beta := rzNew / rz
		rz = rzNew
		flops += xpay(z, beta, pv) // p = z + beta p
	}

	return &RunInfo{
		Kernel: p.Name(),
		Structures: []Structure{
			{Name: "A", Bytes: int64(n) * int64(n) * elem8, ID: int32(a.reg.ID)},
			{Name: "M", Bytes: minv.bytes(), ID: int32(minv.reg.ID)},
			{Name: "x", Bytes: int64(n) * elem8, ID: int32(x.reg.ID)},
			{Name: "p", Bytes: int64(n) * elem8, ID: int32(pv.reg.ID)},
			{Name: "r", Bytes: int64(n) * elem8, ID: int32(r.reg.ID)},
			{Name: "z", Bytes: int64(n) * elem8, ID: int32(z.reg.ID)},
		},
		Refs:     m.mem.Refs(),
		Flops:    flops,
		Measured: map[string]float64{"iters": float64(iters), "n": float64(n)},
		Checksum: norm2(x),
	}, nil
}

// Models mirrors CG.Models with the two additional structures: M streams
// once per iteration like A, and z behaves like r.
func (p *PCG) Models(info *RunInfo) ([]ModelSpec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	iters := int(info.Measured["iters"])
	if iters < 1 {
		return nil, fmt.Errorf("pcg: run info lacks a positive iteration count")
	}
	n := p.N
	bytesA := int64(n) * int64(n) * elem8
	bytesM := int64(n) * int64(n+1) / 2 * elem8
	bytesVec := int64(n) * elem8
	return []ModelSpec{
		{Structure: "A", Estimator: patterns.Reuse{
			TargetBytes: bytesA,
			OtherBytes:  bytesM + 6*bytesVec, // M streams between A's traversals
			Reuses:      iters - 1,
		}},
		{Structure: "M", Estimator: patterns.Reuse{
			TargetBytes: bytesM,
			OtherBytes:  bytesA + 6*bytesVec,
			Reuses:      iters - 1,
		}},
		{Structure: "x", Estimator: patterns.Reuse{
			TargetBytes: bytesVec,
			OtherBytes:  bytesA + bytesM + 5*bytesVec,
			Reuses:      iters - 1,
		}},
		{Structure: "p", Estimator: cgVectorModel(cgVectorParams{
			bytes:       bytesVec,
			smallInterf: int64(n)*elem8 + elem8,
			smallReuses: (n + 2) * iters,
			bigInterf:   bytesM + 4*bytesVec, // M streams before p's update
			bigReuses:   iters,
		})},
		{Structure: "r", Estimator: cgVectorModel(cgVectorParams{
			bytes:       bytesVec,
			smallInterf: int64(n)*elem8 + elem8, // r re-traversed inside z = M^-1 r
			smallReuses: (n + 1) * iters,
			bigInterf:   bytesA + 3*bytesVec,
			bigReuses:   iters - 1,
		})},
		{Structure: "z", Estimator: cgVectorModel(cgVectorParams{
			bytes:       bytesVec,
			smallInterf: int64(n)*elem8 + elem8, // z re-traversed inside the precond apply
			smallReuses: (n + 1) * iters,
			bigInterf:   bytesA + 3*bytesVec, // A streams between z's uses
			bigReuses:   iters - 1,
		})},
	}, nil
}
