package kernels

import (
	"math"
	"testing"

	"github.com/resilience-models/dvf/internal/trace"
)

func TestFloat64FlipperBitAddressing(t *testing.T) {
	s := []float64{0, 0}
	flip := float64Flipper(s)
	// Flip bit 0 of byte 0 of element 1: the LSB of its mantissa.
	if err := flip(8, 0); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(s[1]) != 1 {
		t.Errorf("bits = %x, want 1", math.Float64bits(s[1]))
	}
	if s[0] != 0 {
		t.Error("neighbor element disturbed")
	}
	// Flip bit 7 of byte 7 of element 0: the sign bit.
	if err := flip(7, 7); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(s[0]) != 1<<63 {
		t.Errorf("bits = %x, want sign bit", math.Float64bits(s[0]))
	}
	// Flipping twice restores the value.
	if err := flip(7, 7); err != nil {
		t.Fatal(err)
	}
	if s[0] != 0 {
		t.Error("double flip did not restore")
	}
	if err := flip(16, 0); err == nil {
		t.Error("out-of-range offset accepted")
	}
}

func TestComplex128FlipperTargetsHalves(t *testing.T) {
	s := []complex128{complex(0, 0)}
	flip := complex128Flipper(s)
	if err := flip(0, 0); err != nil { // real part LSB
		t.Fatal(err)
	}
	if math.Float64bits(real(s[0])) != 1 || imag(s[0]) != 0 {
		t.Errorf("real flip wrong: %v", s[0])
	}
	if err := flip(8, 0); err != nil { // imaginary part LSB
		t.Fatal(err)
	}
	if math.Float64bits(imag(s[0])) != 1 {
		t.Errorf("imag flip wrong: %v", s[0])
	}
	if err := flip(99, 0); err == nil {
		t.Error("out-of-range offset accepted")
	}
}

func TestFloat64Flipper64Validation(t *testing.T) {
	v := 0.0
	if err := float64Flipper64(&v, 8, 0); err == nil {
		t.Error("byte offset 8 accepted")
	}
	if err := float64Flipper64(&v, 0, 3); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(v) != 8 {
		t.Errorf("bits = %x, want 8", math.Float64bits(v))
	}
}

func TestInjectorFiresExactlyOnce(t *testing.T) {
	fired := 0
	flip := func(off int64, bit uint8) error {
		fired++
		return nil
	}
	inj := newInjector(nil, Fault{Structure: "X", AtRef: 3}, flip)
	for i := 0; i < 10; i++ {
		inj.Access(trace.Ref{Addr: uint64(i)}, 1)
	}
	if err := inj.finish(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("flip fired %d times, want 1", fired)
	}
}

func TestInjectorFiresAtEndWhenBeyondStream(t *testing.T) {
	fired := 0
	inj := newInjector(nil, Fault{Structure: "X", AtRef: 100}, func(int64, uint8) error {
		fired++
		return nil
	})
	inj.Access(trace.Ref{}, 1)
	if fired != 0 {
		t.Fatal("fired early")
	}
	if err := inj.finish(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("finish did not fire the late fault (fired=%d)", fired)
	}
}

func TestInjectorForwardsToInnerConsumer(t *testing.T) {
	rec := &trace.Recorder{}
	inj := newInjector(rec, Fault{Structure: "X", AtRef: 1}, func(int64, uint8) error { return nil })
	inj.Access(trace.Ref{Addr: 42, Size: 8}, 7)
	if rec.Len() != 1 || rec.Refs[0].Addr != 42 || rec.Owners[0] != 7 {
		t.Errorf("inner consumer not reached: %+v", rec)
	}
}

func TestFlipHolderUnboundErrors(t *testing.T) {
	h := &flipHolder{}
	if err := h.flip(0, 0); err == nil {
		t.Error("unbound holder fired without error")
	}
}

func TestRunGuardedConvertsPanics(t *testing.T) {
	_, err := runGuarded(func() (*RunInfo, error) {
		panic("index out of range")
	})
	if err == nil {
		t.Fatal("panic not converted")
	}
	// The sentinel must be matchable.
	if !isFaultCrash(err) {
		t.Errorf("error %v does not wrap ErrFaultCrash", err)
	}
}

func isFaultCrash(err error) bool {
	for e := err; e != nil; {
		if e == ErrFaultCrash {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestFTInjectedFaultChangesSpectrum(t *testing.T) {
	ft := NewFT(256)
	golden, err := ft.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a high exponent bit of element 10's real part mid-transform.
	fault := Fault{Structure: "X", ByteOffset: 10*16 + 6, Bit: 6, AtRef: golden.Refs / 2}
	info, err := ft.RunInjected(fault, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Checksum == golden.Checksum {
		t.Error("exponent flip mid-FFT did not change the output power")
	}
}

func TestMGInjectedFaultPropagates(t *testing.T) {
	mg := NewMG(16, 1)
	golden, err := mg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Element (8,8,8) of the finest grid, byte 7 (exponent), bit 4: a
	// visible magnitude change, not a sub-ulp mantissa tweak.
	fault := Fault{Structure: "R", ByteOffset: (16*16*8+16*8+8)*8 + 7, Bit: 4, AtRef: 1}
	info, err := mg.RunInjected(fault, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Checksum == golden.Checksum {
		t.Error("interior grid flip did not propagate through the V-cycle")
	}
}
