package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/resilience-models/dvf/internal/patterns"
	"github.com/resilience-models/dvf/internal/trace"
)

// NB is the Barnes-Hut N-body kernel (Algorithm 2). Particles are inserted
// into a quadtree T; the force phase traverses the tree once per particle,
// pruning subtrees whose extent-over-distance ratio is below Theta. The
// major data structures are the tree T and the particle array P; accesses
// to T are random in the paper's classification because how deep each
// traversal descends depends on the (random) particle distribution.
type NB struct {
	N     int     // number of particles
	Theta float64 // Barnes-Hut opening angle; 0 means 0.5
	Seed  int64   // particle distribution seed
	// PlainRandom selects the paper's original random-access model
	// (uniform k distinct visits per iteration, the Algorithm 2 Aspen
	// example) instead of the frequency-weighted extension. The plain model
	// overestimates memory accesses on small caches because it ignores
	// that the top of the tree is visited by every traversal and stays
	// resident; the weighted model feeds the profiled per-node visit
	// frequencies instead. Both are exposed so the ablation benchmark can
	// compare them.
	PlainRandom bool
}

// NewNB returns an NB kernel with the default opening angle.
func NewNB(n int) *NB {
	return &NB{N: n, Theta: 0.5, Seed: 1}
}

// Name implements Kernel.
func (*NB) Name() string { return "NB" }

// Class implements Kernel (Table II).
func (*NB) Class() string { return "N-body method" }

// PatternSummary implements Kernel (Table II).
func (*NB) PatternSummary() string { return "Random" }

// Validate reports configuration errors.
func (nb *NB) Validate() error {
	if nb.N < 2 {
		return fmt.Errorf("nbody: n=%d must be at least 2", nb.N)
	}
	if nb.Theta < 0 {
		return fmt.Errorf("nbody: theta=%g must be non-negative", nb.Theta)
	}
	return nil
}

const (
	nbNodeSize     = 32 // bytes per tree node (paper's E for T)
	nbParticleSize = 32 // bytes per particle
	nbMaxDepth     = 32 // insertion depth cap for near-coincident particles
)

// nbNode is a quadtree node. Geometric centers are carried on the stack
// during traversal (the standard space-saving trick), so the stored state
// is the mass moments plus child links: 3*4 + 4*4 + 4 = 32 bytes.
type nbNode struct {
	mass     float32  // total mass
	mx, my   float32  // mass-weighted position sums (normalized after build)
	children [4]int32 // child indices; -1 = empty
	leaf     int32    // particle index for leaf nodes; -1 = internal/empty
}

type nbParticle struct {
	x, y   float32
	mass   float32
	fx, fy float32
}

// nbState bundles the traced simulation state.
type nbState struct {
	nodes      []nbNode
	particles  []nbParticle
	regT       trace.Region
	regP       trace.Region
	mem        *trace.Memory
	theta      float32
	visits     int64   // node loads during the current force traversal
	visitCount []int64 // per-node visit totals over the force phase
}

func (s *nbState) loadNode(i int32) *nbNode {
	s.mem.LoadN(s.regT, int(i), nbNodeSize)
	return &s.nodes[i]
}

func (s *nbState) storeNode(i int32) {
	s.mem.StoreN(s.regT, int(i), nbNodeSize)
}

func (s *nbState) loadParticle(i int) *nbParticle {
	s.mem.LoadN(s.regP, i, nbParticleSize)
	return &s.particles[i]
}

func (s *nbState) storeParticle(i int) {
	s.mem.StoreN(s.regP, i, nbParticleSize)
}

func (s *nbState) newNode() int32 {
	if len(s.nodes) == cap(s.nodes) {
		// The node arena is sized to the trace region; growing it would
		// desynchronize simulated addresses from real storage.
		panic("nbody: node arena exhausted")
	}
	s.nodes = append(s.nodes, nbNode{children: [4]int32{-1, -1, -1, -1}, leaf: -1})
	return int32(len(s.nodes) - 1)
}

// quadrant returns the child index of (x, y) within a cell centered at
// (cx, cy), and the child cell's center.
func quadrant(x, y, cx, cy, half float32) (int, float32, float32) {
	q := 0
	h := half / 2
	ncx, ncy := cx-h, cy-h
	if x >= cx {
		q |= 1
		ncx = cx + h
	}
	if y >= cy {
		q |= 2
		ncy = cy + h
	}
	return q, ncx, ncy
}

// insert places particle pi into the subtree rooted at node ni, whose cell
// is centered at (cx, cy) with half-extent half.
func (s *nbState) insert(ni int32, pi int32, cx, cy, half float32, depth int) {
	p := s.particles[pi]
	node := s.loadNode(ni)
	wasEmpty := node.leaf == -1 && node.mass == 0 &&
		node.children == [4]int32{-1, -1, -1, -1}
	// Accumulate mass moments on the way down. Note: descend may append to
	// s.nodes, so after any descend the node must be re-indexed, never
	// accessed through this pointer.
	node.mass += p.mass
	node.mx += p.mass * p.x
	node.my += p.mass * p.y

	switch {
	case wasEmpty:
		node.leaf = pi
		s.storeNode(ni)
	case node.leaf >= 0:
		// Occupied leaf: split, reinsert the old occupant, then descend.
		old := node.leaf
		node.leaf = -1
		s.storeNode(ni)
		if depth >= nbMaxDepth {
			// Near-coincident particles: keep as an aggregated pseudo-leaf
			// (the extra particle contributes mass to the ancestors only).
			s.nodes[ni].leaf = old
			s.storeNode(ni)
			return
		}
		s.descend(ni, old, cx, cy, half, depth)
		s.descend(ni, pi, cx, cy, half, depth)
	default:
		s.storeNode(ni)
		s.descend(ni, pi, cx, cy, half, depth)
	}
}

// descend routes particle pi into the proper child of internal node ni.
func (s *nbState) descend(ni, pi int32, cx, cy, half float32, depth int) {
	p := s.particles[pi]
	q, ncx, ncy := quadrant(p.x, p.y, cx, cy, half)
	child := s.nodes[ni].children[q]
	if child == -1 {
		child = s.newNode()
		s.nodes[ni].children[q] = child
		s.storeNode(ni)
	}
	s.insert(child, pi, ncx, ncy, half/2, depth+1)
}

// nbForceDepthCap bounds force-phase recursion. A healthy quadtree never
// approaches it (depth <= nbMaxDepth); it exists so that corrupted child
// links (fault injection can create cycles) terminate as a wrong answer
// or a recoverable panic instead of exhausting the stack.
const nbForceDepthCap = 4 * nbMaxDepth

// force accumulates the force on particle pi from the subtree at ni.
func (s *nbState) force(pi int32, ni int32, half float32, p *nbParticle, depth int) (fx, fy float32, flops int64) {
	if depth > nbForceDepthCap {
		return 0, 0, 0
	}
	node := s.loadNode(ni)
	s.visits++
	if s.visitCount != nil {
		s.visitCount[ni]++
	}
	if node.mass == 0 {
		return 0, 0, 0
	}
	comX := node.mx / node.mass
	comY := node.my / node.mass
	dx := comX - p.x
	dy := comY - p.y
	dist2 := dx*dx + dy*dy + 1e-9
	dist := float32(math.Sqrt(float64(dist2)))

	if node.leaf >= 0 || 2*half/dist < s.theta {
		if node.leaf == pi {
			return 0, 0, 4
		}
		f := node.mass * p.mass / (dist2 * dist)
		return f * dx, f * dy, 12
	}
	for q := 0; q < 4; q++ {
		if c := node.children[q]; c != -1 {
			cfx, cfy, fl := s.force(pi, c, half/2, p, depth+1)
			fx += cfx
			fy += cfy
			flops += fl + 2
		}
	}
	return fx, fy, flops + 8
}

// nodeFlipper corrupts one bit of the quadtree arena: bytes 0-11 of a
// node are its float32 mass moments, 12-27 the four child links, 28-31
// the leaf index. Corrupted links can point anywhere in the arena —
// including ancestors — which the depth-capped traversal converts into a
// wrong answer or a recoverable out-of-range panic.
func nodeFlipper(arena []nbNode) flipper {
	return func(off int64, bit uint8) error {
		rec := off / nbNodeSize
		if rec < 0 || rec >= int64(len(arena)) {
			return fmt.Errorf("fault: offset %d outside %d tree nodes", off, len(arena))
		}
		node := &arena[rec]
		switch within := off % nbNodeSize; {
		case within < 4:
			return float32Flip(&node.mass, within, bit)
		case within < 8:
			return float32Flip(&node.mx, within-4, bit)
		case within < 12:
			return float32Flip(&node.my, within-8, bit)
		case within < 28:
			return int32Flip(&node.children[(within-12)/4], (within-12)%4, bit)
		default:
			return int32Flip(&node.leaf, within-28, bit)
		}
	}
}

// particleFlipper corrupts one bit of the particle array: bytes 0-19 are
// the five float32 fields (x, y, mass, fx, fy); 20-31 are padding, where
// flips are architecturally benign.
func particleFlipper(parts []nbParticle) flipper {
	return func(off int64, bit uint8) error {
		rec := off / nbParticleSize
		if rec < 0 || rec >= int64(len(parts)) {
			return fmt.Errorf("fault: offset %d outside %d particles", off, len(parts))
		}
		p := &parts[rec]
		fields := []*float32{&p.x, &p.y, &p.mass, &p.fx, &p.fy}
		within := off % nbParticleSize
		if within >= 20 {
			return nil // padding
		}
		return float32Flip(fields[within/4], within%4, bit)
	}
}

// Run builds the quadtree and computes the net force on every particle.
func (nb *NB) Run(sink trace.Consumer) (*RunInfo, error) {
	return nb.run(sink, nil)
}

// RunInjected implements Injectable: it executes the simulation with a
// single bit flip armed against the tree T or the particle array P.
func (nb *NB) RunInjected(fault Fault, sink trace.Consumer) (*RunInfo, error) {
	if err := fault.Validate(); err != nil {
		return nil, err
	}
	return runGuarded(func() (*RunInfo, error) { return nb.run(sink, &fault) })
}

func (nb *NB) run(sink trace.Consumer, fault *Fault) (*RunInfo, error) {
	if err := nb.Validate(); err != nil {
		return nil, err
	}
	theta := nb.Theta
	if theta == 0 {
		theta = 0.5
	}
	var (
		inj    *injector
		holder *flipHolder
	)
	if fault != nil {
		if fault.Structure != "T" && fault.Structure != "P" {
			return nil, fmt.Errorf("nbody: no injectable structure %q", fault.Structure)
		}
		holder = &flipHolder{}
		inj = newInjector(sink, *fault, holder.flip)
		sink = inj
	}
	m := newMemory(sink)
	n := nb.N
	maxNodes := 8 * n
	regT := m.alloc("T", int64(maxNodes)*nbNodeSize)
	regP := m.alloc("P", int64(n)*nbParticleSize)

	s := &nbState{
		nodes:     make([]nbNode, 0, maxNodes),
		particles: make([]nbParticle, n),
		regT:      regT,
		regP:      regP,
		mem:       m.mem,
		theta:     float32(theta),
	}
	rng := rand.New(rand.NewSource(nb.Seed))
	for i := range s.particles {
		s.particles[i] = nbParticle{
			x:    float32(rng.Float64()),
			y:    float32(rng.Float64()),
			mass: float32(0.5 + rng.Float64()),
		}
	}
	if holder != nil {
		switch fault.Structure {
		case "T":
			holder.f = nodeFlipper(s.nodes[:cap(s.nodes)])
		case "P":
			holder.f = particleFlipper(s.particles)
		}
	}

	// Tree construction: every particle is read once and inserted; this is
	// the "traversed once before the random accesses" phase of the model.
	root := s.newNode()
	var flops int64
	for i := 0; i < n; i++ {
		s.loadParticle(i)
		s.insert(root, int32(i), 0.5, 0.5, 0.5, 0)
		flops += 6
	}

	// Force phase: one tree traversal per particle. Per-node visit counts
	// are profiled alongside, feeding the weighted random-access model.
	s.visitCount = make([]int64, len(s.nodes))
	var totalVisits int64
	var checksum float64
	for i := 0; i < n; i++ {
		p := s.loadParticle(i)
		s.visits = 0
		fx, fy, fl := s.force(int32(i), root, 0.5, p, 0)
		flops += fl
		s.particles[i].fx = fx
		s.particles[i].fy = fy
		s.storeParticle(i)
		totalVisits += s.visits
		// Sum of magnitudes: the signed sum is ~0 by Newton's third law
		// and would drown any real error in cancellation noise.
		checksum += math.Abs(float64(fx)) + math.Abs(float64(fy))
	}
	if inj != nil {
		if err := inj.finish(); err != nil {
			return nil, err
		}
	}
	numNodes := len(s.nodes)
	kAvg := float64(totalVisits) / float64(n)
	freqs := make([]float64, numNodes)
	for i, c := range s.visitCount {
		freqs[i] = float64(c) / float64(n)
	}

	return &RunInfo{
		Kernel: nb.Name(),
		Structures: []Structure{
			{Name: "T", Bytes: int64(numNodes) * nbNodeSize, ID: int32(regT.ID)},
			{Name: "P", Bytes: int64(n) * nbParticleSize, ID: int32(regP.ID)},
		},
		Refs:  m.mem.Refs(),
		Flops: flops,
		Measured: map[string]float64{
			"nodes": float64(numNodes),
			"k":     kAvg,
			"iter":  float64(n),
		},
		Profiles: map[string][]float64{"T": freqs},
		Checksum: checksum,
	}, nil
}

// Models returns the Aspen parameterization: T is random-access with the
// profiled (N, E, k, iter, r) tuple — by default through the
// frequency-weighted model, or through the paper's plain uniform model
// when PlainRandom is set — and P streams twice (construction pass plus
// force pass).
func (nb *NB) Models(info *RunInfo) ([]ModelSpec, error) {
	if err := nb.Validate(); err != nil {
		return nil, err
	}
	nodes := int(info.Measured["nodes"])
	k := int(math.Round(info.Measured["k"]))
	iter := int(info.Measured["iter"])
	if nodes <= 0 || iter <= 0 {
		return nil, fmt.Errorf("nbody: run info lacks profiled tree parameters")
	}
	if k > nodes {
		k = nodes
	}
	var tree patterns.Estimator
	freqs := info.Profiles["T"]
	if nb.PlainRandom || len(freqs) == 0 {
		tree = patterns.Random{
			N: nodes, ElemSize: nbNodeSize, K: k, Iterations: iter, CacheRatio: 1.0}
	} else {
		tree = patterns.WeightedRandom{
			Frequencies: freqs, ElemSize: nbNodeSize, Iterations: iter, CacheRatio: 1.0}
	}
	return []ModelSpec{
		{Structure: "T", Estimator: tree},
		{Structure: "P", Estimator: patterns.Streaming{
			ElemSize: nbParticleSize, Count: nb.N, StrideElems: 1, Aligned: true, Repeats: 2}},
	}, nil
}
