package dvf

import (
	"fmt"
	"math"
)

// The paper notes that Equation 1's plain product assumes N_error and N_ha
// contribute equally, and that "a further refined definition of DVF could
// assign a weighting factor to each term to account for diverse
// vulnerability contributions from each term". Weighting implements that
// refinement as the exponent-weighted product
//
//	DVF_w = N_error^Alpha * N_ha^Beta
//
// with Alpha = Beta = 1 recovering Equation 1. Exponent (rather than
// multiplicative) weights preserve the metric's two essential properties:
// rankings are invariant to uniform scaling of either term, and the
// weighted metric remains monotone in both.
type Weighting struct {
	Alpha float64 // weight on the error-exposure term N_error
	Beta  float64 // weight on the access-count term N_ha
}

// Unweighted is the paper's Equation 1.
var Unweighted = Weighting{Alpha: 1, Beta: 1}

// Validate rejects non-positive weights, which would invert monotonicity.
func (w Weighting) Validate() error {
	if w.Alpha <= 0 || w.Beta <= 0 {
		return fmt.Errorf("dvf: weights (%g, %g) must be positive", w.Alpha, w.Beta)
	}
	return nil
}

// ForStructure returns the weighted DVF_d.
func (w Weighting) ForStructure(rate FIT, execHours float64, sizeBytes int64, nha float64) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	ne := NError(rate, execHours, sizeBytes)
	if ne < 0 || nha < 0 {
		return 0, fmt.Errorf("dvf: negative inputs (N_error=%g, N_ha=%g)", ne, nha)
	}
	return math.Pow(ne, w.Alpha) * math.Pow(nha, w.Beta), nil
}

// Rescore recomputes an application's per-structure DVFs under the
// weighting, returning a new Application (the original is not modified).
func (w Weighting) Rescore(app *Application) (*Application, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	out := &Application{
		Kernel:    app.Kernel,
		ExecHours: app.ExecHours,
		Rate:      app.Rate,
	}
	for _, s := range app.Structures {
		d, err := w.ForStructure(app.Rate, app.ExecHours, s.Bytes, s.NHa)
		if err != nil {
			return nil, err
		}
		out.Structures = append(out.Structures, StructureDVF{
			Name:   s.Name,
			Bytes:  s.Bytes,
			NHa:    s.NHa,
			NError: s.NError,
			DVF:    d,
		})
	}
	return out, nil
}
