package dvf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/resilience-models/dvf/internal/mathx"
)

func TestNErrorUnits(t *testing.T) {
	// 5000 FIT/Mbit on 1 Mbit (125000 bytes) for 1e9 hours = 5000 errors.
	got := NError(5000, 1e9, 125000)
	if !mathx.ApproxEqual(got, 5000, 1e-12) {
		t.Errorf("NError = %g, want 5000", got)
	}
	// Scales linearly in each factor.
	if !mathx.ApproxEqual(NError(5000, 2e9, 125000), 10000, 1e-12) {
		t.Error("NError not linear in time")
	}
	if !mathx.ApproxEqual(NError(2500, 1e9, 125000), 2500, 1e-12) {
		t.Error("NError not linear in FIT")
	}
	if !mathx.ApproxEqual(NError(5000, 1e9, 250000), 10000, 1e-12) {
		t.Error("NError not linear in size")
	}
}

func TestForStructureEquationOne(t *testing.T) {
	// DVF_d = FIT * T * S_d * N_ha.
	got := ForStructure(5000, 1e9, 125000, 3)
	if !mathx.ApproxEqual(got, 15000, 1e-12) {
		t.Errorf("DVF_d = %g, want 15000", got)
	}
	if ForStructure(5000, 0, 125000, 3) != 0 {
		t.Error("zero time should yield zero DVF")
	}
}

func TestTableVIIFITRates(t *testing.T) {
	if FITNoECC != 5000 || FITChipkill != 0.02 || FITSECDED != 1300 {
		t.Errorf("Table VII rates drifted: %g %g %g",
			float64(FITNoECC), float64(FITChipkill), float64(FITSECDED))
	}
	rows := TableVII()
	if len(rows) != 3 {
		t.Fatalf("Table VII has %d rows", len(rows))
	}
	if rows[0].Rate != FITNoECC || rows[1].Rate != FITChipkill || rows[2].Rate != FITSECDED {
		t.Error("Table VII row order wrong")
	}
}

func TestApplicationTotalIsSum(t *testing.T) {
	app, err := NewApplication("VM", FITNoECC, 1e-6,
		[]string{"A", "B"}, []int64{1000, 2000}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range app.Structures {
		sum += s.DVF
	}
	if app.Total() != sum {
		t.Errorf("Total %g != sum %g", app.Total(), sum)
	}
	a, err := app.Structure("A")
	if err != nil {
		t.Fatal(err)
	}
	want := ForStructure(FITNoECC, 1e-6, 1000, 10)
	if !mathx.ApproxEqual(a.DVF, want, 1e-12) {
		t.Errorf("A DVF %g, want %g", a.DVF, want)
	}
	if _, err := app.Structure("zzz"); err == nil {
		t.Error("unknown structure lookup succeeded")
	}
}

func TestNewApplicationValidation(t *testing.T) {
	if _, err := NewApplication("x", FITNoECC, 1,
		[]string{"A"}, []int64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched inputs accepted")
	}
	if _, err := NewApplication("x", FITNoECC, -1,
		[]string{"A"}, []int64{1}, []float64{1}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestApplicationRenderSortsByDVF(t *testing.T) {
	app, _ := NewApplication("k", FITNoECC, 1,
		[]string{"small", "big"}, []int64{1, 1000}, []float64{1, 1000})
	out := app.Render()
	if !strings.Contains(out, "DVF_a") {
		t.Error("render missing DVF_a")
	}
	if strings.Index(out, "big") > strings.Index(out, "small") {
		t.Error("render should list the most vulnerable structure first")
	}
}

// Property: DVF is monotone in every input.
func TestDVFMonotonicityProperty(t *testing.T) {
	f := func(fit1, fit2, t1, t2 uint16, s1, s2 uint16, n1, n2 uint16) bool {
		lo := func(a, b uint16) (float64, float64) {
			x, y := float64(a)+1, float64(b)+1
			if x > y {
				x, y = y, x
			}
			return x, y
		}
		fl, fh := lo(fit1, fit2)
		tl, th := lo(t1, t2)
		sl, sh := lo(s1, s2)
		nl, nh := lo(n1, n2)
		return ForStructure(FIT(fl), tl, int64(sl), nl) <=
			ForStructure(FIT(fh), th, int64(sh), nh)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostModelComposition(t *testing.T) {
	cm := CostModel{RefSeconds: 1, MemSeconds: 10, FlopSeconds: 0.5}
	if got := cm.ExecSeconds(3, 2, 4); got != 3+20+2 {
		t.Errorf("ExecSeconds = %g, want 25", got)
	}
	if got := cm.ExecHours(3600, 0, 0); got != 1 {
		t.Errorf("ExecHours = %g, want 1", got)
	}
	if DefaultCostModel.MemSeconds <= DefaultCostModel.RefSeconds {
		t.Error("memory access must cost more than a cache hit")
	}
}

func TestEffectiveFITInterpolation(t *testing.T) {
	// At zero degradation: unprotected; at saturation and beyond: the
	// mechanism's floor; in between: strictly decreasing.
	if SECDED.EffectiveFIT(0) != FITNoECC {
		t.Error("zero investment should leave the raw rate")
	}
	if SECDED.EffectiveFIT(5) != FITSECDED {
		t.Error("saturation should reach the mechanism's rate")
	}
	if SECDED.EffectiveFIT(30) != FITSECDED {
		t.Error("past saturation the rate must stay at the floor")
	}
	prev := float64(SECDED.EffectiveFIT(0))
	for d := 0.5; d <= 5; d += 0.5 {
		cur := float64(SECDED.EffectiveFIT(d))
		if cur >= prev {
			t.Fatalf("EffectiveFIT not decreasing at %g%%: %g >= %g", d, cur, prev)
		}
		prev = cur
	}
	// Chipkill's floor is far below SECDED's.
	if Chipkill.EffectiveFIT(10) >= SECDED.EffectiveFIT(10) {
		t.Error("chipkill must beat SECDED at full strength")
	}
}

func TestSweepUShape(t *testing.T) {
	// The Figure 7 signature: minimum exactly at the saturation point.
	degr := make([]float64, 0, 31)
	for d := 0.0; d <= 30; d++ {
		degr = append(degr, d)
	}
	for _, mech := range []ECC{SECDED, Chipkill} {
		points, err := mech.Sweep(1e-5, 1<<20, 1e6, degr)
		if err != nil {
			t.Fatal(err)
		}
		best, err := MinPoint(points)
		if err != nil {
			t.Fatal(err)
		}
		if best.DegradationPct != mech.SaturationPct {
			t.Errorf("%s: minimum at %g%%, want %g%%",
				mech.Name, best.DegradationPct, mech.SaturationPct)
		}
		// Beyond the minimum, DVF rises monotonically (longer exposure).
		for i := 6; i < len(points); i++ {
			if points[i].DVF <= points[i-1].DVF {
				t.Errorf("%s: DVF not rising past saturation at %g%%",
					mech.Name, points[i].DegradationPct)
			}
		}
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := SECDED.Sweep(-1, 1, 1, []float64{0}); err == nil {
		t.Error("negative base time accepted")
	}
	if _, err := SECDED.Sweep(1, 1, 1, []float64{-5}); err == nil {
		t.Error("negative degradation accepted")
	}
	if _, err := MinPoint(nil); err == nil {
		t.Error("MinPoint on empty sweep succeeded")
	}
}

func TestMeetsTarget(t *testing.T) {
	p := SweepPoint{DVF: 10}
	if !MeetsTarget(p, 10) || MeetsTarget(p, 9.99) {
		t.Error("MeetsTarget boundary wrong")
	}
}

func TestEffectiveFITGeometricMidpoint(t *testing.T) {
	// Halfway to saturation the rate is the geometric mean of the ends.
	mid := float64(SECDED.EffectiveFIT(2.5))
	want := math.Sqrt(float64(FITNoECC) * float64(FITSECDED))
	if !mathx.ApproxEqual(mid, want, 1e-9) {
		t.Errorf("midpoint rate %g, want geometric mean %g", mid, want)
	}
}
