// Package dvf implements the data vulnerability factor of the paper's
// Section III-A, the resilience metric at the heart of this repository.
//
// Notation (Table I):
//
//	FIT      failure rate: failures per billion hours per Mbit
//	T        application execution time
//	S_d      size of the data structure
//	N_error  number of errors that could occur to the structure during the
//	         execution: N_error = FIT * T * S_d
//	N_ha     number of accesses to the hardware (main memory) caused by
//	         accesses to the structure
//	DVF_d    DVF for a data structure: N_error * N_ha          (Equation 1)
//	DVF_a    DVF for an application: sum of its structures'    (Equation 2)
//
// A larger DVF means a more vulnerable structure: more standing errors and
// more opportunities for a corrupted value to reach the computation.
package dvf

import (
	"fmt"
	"sort"
	"strings"

	"github.com/resilience-models/dvf/internal/tracez"
)

// FIT is a memory failure rate in failures per billion (1e9) device-hours
// per Mbit, the unit of Table VII.
type FIT float64

// The measured DRAM failure rates of Table VII.
const (
	// FITNoECC is the raw DRAM failure rate with no protection.
	FITNoECC FIT = 5000
	// FITChipkill is the residual rate under chipkill-correct ECC.
	FITChipkill FIT = 0.02
	// FITSECDED is the residual rate under SECDED ECC.
	FITSECDED FIT = 1300
)

// NError returns N_error = FIT * T * S_d: the expected number of raw errors
// striking a structure of sizeBytes during execHours of execution.
// FIT's denominator units (1e9 hours, Mbit) are normalized here.
func NError(rate FIT, execHours float64, sizeBytes int64) float64 {
	sizeMbit := float64(sizeBytes) * 8 / 1e6
	return float64(rate) / 1e9 * execHours * sizeMbit
}

// ForStructure returns DVF_d = N_error * N_ha (Equation 1).
func ForStructure(rate FIT, execHours float64, sizeBytes int64, nha float64) float64 {
	return NError(rate, execHours, sizeBytes) * nha
}

// StructureDVF is one structure's contribution to an application's DVF.
type StructureDVF struct {
	Name   string
	Bytes  int64   // S_d
	NHa    float64 // estimated main-memory accesses
	NError float64
	DVF    float64
}

// Application aggregates per-structure DVFs into DVF_a (Equation 2).
type Application struct {
	Kernel     string
	ExecHours  float64
	Rate       FIT
	Structures []StructureDVF
}

// Total returns DVF_a, the sum over the major data structures.
func (a *Application) Total() float64 {
	var sum float64
	for _, s := range a.Structures {
		sum += s.DVF
	}
	return sum
}

// Structure returns the named entry.
func (a *Application) Structure(name string) (StructureDVF, error) {
	for _, s := range a.Structures {
		if s.Name == name {
			return s, nil
		}
	}
	return StructureDVF{}, fmt.Errorf("dvf: %s has no structure %q", a.Kernel, name)
}

// NewApplication computes per-structure and application DVFs from the raw
// ingredients. names, sizes and nhas run parallel.
func NewApplication(kernel string, rate FIT, execHours float64, names []string, sizes []int64, nhas []float64) (*Application, error) {
	return NewApplicationObs(kernel, rate, execHours, names, sizes, nhas, nil)
}

// NewApplicationObs is NewApplication with the aggregation recorded as a
// span on tk — callers typically share one "dvf" track across kernels,
// so the DVF assembly steps line up on a single lane. A nil track is a
// no-op.
func NewApplicationObs(kernel string, rate FIT, execHours float64, names []string, sizes []int64, nhas []float64, tk *tracez.Track) (*Application, error) {
	sp := tk.Begin("dvf.aggregate " + kernel)
	defer sp.End()
	if len(names) != len(sizes) || len(names) != len(nhas) {
		return nil, fmt.Errorf("dvf: mismatched inputs: %d names, %d sizes, %d nhas",
			len(names), len(sizes), len(nhas))
	}
	if execHours < 0 {
		return nil, fmt.Errorf("dvf: negative execution time %g", execHours)
	}
	app := &Application{Kernel: kernel, ExecHours: execHours, Rate: rate}
	for i, name := range names {
		ne := NError(rate, execHours, sizes[i])
		app.Structures = append(app.Structures, StructureDVF{
			Name:   name,
			Bytes:  sizes[i],
			NHa:    nhas[i],
			NError: ne,
			DVF:    ne * nhas[i],
		})
	}
	return app, nil
}

// Render formats the application report, most vulnerable structure first.
func (a *Application) Render() string {
	rows := make([]StructureDVF, len(a.Structures))
	copy(rows, a.Structures)
	sort.Slice(rows, func(i, j int) bool { return rows[i].DVF > rows[j].DVF })
	var b strings.Builder
	fmt.Fprintf(&b, "DVF report for %s (FIT=%g, T=%.3e h)\n", a.Kernel, float64(a.Rate), a.ExecHours)
	fmt.Fprintf(&b, "%-8s %12s %14s %14s %14s\n", "struct", "bytes", "N_ha", "N_error", "DVF")
	for _, s := range rows {
		fmt.Fprintf(&b, "%-8s %12d %14.4g %14.4g %14.4g\n", s.Name, s.Bytes, s.NHa, s.NError, s.DVF)
	}
	fmt.Fprintf(&b, "%-8s %12d %14s %14s %14.4g\n", "DVF_a", int64(0), "", "", a.Total())
	return b.String()
}
