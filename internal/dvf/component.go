package dvf

import (
	"fmt"
	"sort"
	"strings"
)

// The paper limits its study to main memory but states that "the
// definition of DVF is also applicable to other hardware components (e.g.,
// cache hierarchy, register file and network interface card)". Component
// realizes that: each hardware domain holding a data structure contributes
// FIT_c * T * S_c * N_c, where S_c is the structure's footprint *within
// the component* (e.g. its resident bytes in the LLC) and N_c the accesses
// the component serves.
type Component struct {
	Name string
	// Rate is the component's raw failure rate in FIT/Mbit. SRAM arrays
	// and DRAM have different technologies and therefore different rates.
	Rate FIT
}

// Typical per-technology failure rates. DRAM matches Table VII's
// unprotected rate; the SRAM figures follow the same surveys the paper
// cites for DRAM ([25], [26]: SRAM cell upsets are of comparable
// per-Mbit magnitude to unprotected DRAM at these technology nodes).
var (
	ComponentDRAM = Component{Name: "main memory (DRAM)", Rate: FITNoECC}
	ComponentSRAM = Component{Name: "last-level cache (SRAM)", Rate: 4000}
	ComponentRF   = Component{Name: "register file", Rate: 2000}
)

// ComponentExposure describes one structure's presence in one component.
type ComponentExposure struct {
	Component Component
	// ResidentBytes is the structure's average footprint within the
	// component (for main memory, the whole structure; for a cache, its
	// average resident bytes — e.g. hit-ratio-derived occupancy).
	ResidentBytes int64
	// Accesses is the number of accesses the component serves for the
	// structure (cache hits for a cache, memory accesses for memory).
	Accesses float64
}

// DVF returns the exposure's vulnerability contribution.
func (e ComponentExposure) DVF(execHours float64) float64 {
	return NError(e.Component.Rate, execHours, e.ResidentBytes) * e.Accesses
}

// MultiComponent aggregates a structure's DVF across hardware domains —
// the "holistic view ... of the system stack" the paper motivates, carried
// one level further down.
type MultiComponent struct {
	Structure string
	ExecHours float64
	Exposures []ComponentExposure
}

// Total returns the summed cross-component DVF.
func (m *MultiComponent) Total() float64 {
	var sum float64
	for _, e := range m.Exposures {
		sum += e.DVF(m.ExecHours)
	}
	return sum
}

// Dominant returns the component contributing the most vulnerability.
func (m *MultiComponent) Dominant() (ComponentExposure, error) {
	if len(m.Exposures) == 0 {
		return ComponentExposure{}, fmt.Errorf("dvf: no component exposures")
	}
	best := m.Exposures[0]
	for _, e := range m.Exposures[1:] {
		if e.DVF(m.ExecHours) > best.DVF(m.ExecHours) {
			best = e
		}
	}
	return best, nil
}

// Render formats the per-component breakdown, largest contributor first.
func (m *MultiComponent) Render() string {
	rows := make([]ComponentExposure, len(m.Exposures))
	copy(rows, m.Exposures)
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].DVF(m.ExecHours) > rows[j].DVF(m.ExecHours)
	})
	var b strings.Builder
	fmt.Fprintf(&b, "multi-component DVF for %s (T=%.3e h)\n", m.Structure, m.ExecHours)
	fmt.Fprintf(&b, "%-26s %14s %14s %14s\n", "component", "resident-bytes", "accesses", "DVF")
	for _, e := range rows {
		fmt.Fprintf(&b, "%-26s %14d %14.4g %14.4g\n",
			e.Component.Name, e.ResidentBytes, e.Accesses, e.DVF(m.ExecHours))
	}
	fmt.Fprintf(&b, "%-26s %14s %14s %14.4g\n", "TOTAL", "", "", m.Total())
	return b.String()
}

// MemoryAndCacheExposure builds the common two-domain analysis for a
// structure: its DRAM exposure (full footprint, main-memory accesses) plus
// its LLC exposure (resident share of the cache, the hits the cache
// serves). cacheResidentBytes is typically min(structBytes, its share of
// the cache capacity); cacheHits is totalAccesses - memoryAccesses.
func MemoryAndCacheExposure(structure string, execHours float64,
	structBytes, cacheResidentBytes int64, memoryAccesses, cacheHits float64) (*MultiComponent, error) {
	if execHours < 0 {
		return nil, fmt.Errorf("dvf: negative execution time %g", execHours)
	}
	if cacheResidentBytes > structBytes {
		cacheResidentBytes = structBytes
	}
	if cacheResidentBytes < 0 || memoryAccesses < 0 || cacheHits < 0 {
		return nil, fmt.Errorf("dvf: negative exposure inputs")
	}
	return &MultiComponent{
		Structure: structure,
		ExecHours: execHours,
		Exposures: []ComponentExposure{
			{Component: ComponentDRAM, ResidentBytes: structBytes, Accesses: memoryAccesses},
			{Component: ComponentSRAM, ResidentBytes: cacheResidentBytes, Accesses: cacheHits},
		},
	}, nil
}
