package dvf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/resilience-models/dvf/internal/mathx"
)

func TestUnweightedRecoversEquationOne(t *testing.T) {
	got, err := Unweighted.ForStructure(FITNoECC, 1e-3, 1<<20, 12345)
	if err != nil {
		t.Fatal(err)
	}
	want := ForStructure(FITNoECC, 1e-3, 1<<20, 12345)
	if !mathx.ApproxEqual(got, want, 1e-12) {
		t.Errorf("unweighted = %g, plain = %g", got, want)
	}
}

func TestWeightingValidation(t *testing.T) {
	for _, w := range []Weighting{{0, 1}, {1, 0}, {-1, 1}} {
		if _, err := w.ForStructure(FITNoECC, 1, 1, 1); err == nil {
			t.Errorf("invalid weighting %+v accepted", w)
		}
		if _, err := w.Rescore(&Application{}); err == nil {
			t.Errorf("invalid weighting %+v rescored", w)
		}
	}
}

// Property: weighted DVF is monotone in both terms for any positive
// weights, and scaling-invariant for rankings.
func TestWeightedMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8, n1, n2 uint16) bool {
		w := Weighting{
			Alpha: float64(aRaw%30)/10 + 0.1,
			Beta:  float64(bRaw%30)/10 + 0.1,
		}
		lo, hi := float64(n1)+1, float64(n2)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		v1, err1 := w.ForStructure(FITNoECC, 1e-3, 1<<20, lo)
		v2, err2 := w.ForStructure(FITNoECC, 1e-3, 1<<20, hi)
		if err1 != nil || err2 != nil {
			return false
		}
		return v1 <= v2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedBetaShiftsEmphasisToAccessCount(t *testing.T) {
	// Two structures: "big" has 10x the size, "hot" has 10x the accesses.
	// Under beta >> alpha the hot structure must outrank the big one.
	app, err := NewApplication("k", FITNoECC, 1e-3,
		[]string{"big", "hot"}, []int64{10 << 20, 1 << 20}, []float64{1e4, 1e5})
	if err != nil {
		t.Fatal(err)
	}
	// Equation 1: equal products (10x size vs 10x accesses cancel).
	b0, _ := app.Structure("big")
	h0, _ := app.Structure("hot")
	if !mathx.ApproxEqual(b0.DVF, h0.DVF, 1e-9) {
		t.Fatalf("baseline should tie: %g vs %g", b0.DVF, h0.DVF)
	}
	emph, err := Weighting{Alpha: 1, Beta: 2}.Rescore(app)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := emph.Structure("big")
	h, _ := emph.Structure("hot")
	if h.DVF <= b.DVF {
		t.Errorf("beta-weighted: hot %g should outrank big %g", h.DVF, b.DVF)
	}
	// And alpha emphasis flips it.
	emph2, err := Weighting{Alpha: 2, Beta: 1}.Rescore(app)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := emph2.Structure("big")
	h2, _ := emph2.Structure("hot")
	if b2.DVF <= h2.DVF {
		t.Errorf("alpha-weighted: big %g should outrank hot %g", b2.DVF, h2.DVF)
	}
}

func TestComponentExposureDVF(t *testing.T) {
	e := ComponentExposure{Component: ComponentDRAM, ResidentBytes: 125000, Accesses: 3}
	want := ForStructure(FITNoECC, 1e9, 125000, 3)
	if !mathx.ApproxEqual(e.DVF(1e9), want, 1e-12) {
		t.Errorf("component DVF = %g, want %g", e.DVF(1e9), want)
	}
}

func TestMemoryAndCacheExposure(t *testing.T) {
	mc, err := MemoryAndCacheExposure("A", 1e-4, 1<<20, 256<<10, 5e4, 9.5e5)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Exposures) != 2 {
		t.Fatalf("exposures = %d", len(mc.Exposures))
	}
	if mc.Total() <= 0 {
		t.Error("total should be positive")
	}
	dom, err := mc.Dominant()
	if err != nil {
		t.Fatal(err)
	}
	// 19x the accesses at 1/4 the resident size and ~0.8x FIT: the cache
	// dominates here — hot data's vulnerability lives where it is served.
	if dom.Component.Name != ComponentSRAM.Name {
		t.Errorf("dominant component = %s, want the cache", dom.Component.Name)
	}
	out := mc.Render()
	for _, want := range []string{"multi-component", "DRAM", "SRAM", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestMemoryAndCacheExposureClampsResidency(t *testing.T) {
	mc, err := MemoryAndCacheExposure("v", 1e-4, 4096, 1<<20, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Exposures[1].ResidentBytes != 4096 {
		t.Errorf("cache residency %d not clamped to the structure size", mc.Exposures[1].ResidentBytes)
	}
}

func TestMemoryAndCacheExposureValidation(t *testing.T) {
	if _, err := MemoryAndCacheExposure("x", -1, 1, 1, 1, 1); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := MemoryAndCacheExposure("x", 1, 1, 1, -1, 1); err == nil {
		t.Error("negative accesses accepted")
	}
}

func TestDominantEmpty(t *testing.T) {
	m := &MultiComponent{}
	if _, err := m.Dominant(); err == nil {
		t.Error("empty exposures accepted")
	}
}

func TestComponentRatesOrdered(t *testing.T) {
	// Unprotected DRAM is the worst per Mbit; the register file, being
	// small and often hardened, the best of the three.
	if !(ComponentDRAM.Rate > ComponentSRAM.Rate && ComponentSRAM.Rate > ComponentRF.Rate) {
		t.Errorf("component rate ordering broken: %g %g %g",
			float64(ComponentDRAM.Rate), float64(ComponentSRAM.Rate), float64(ComponentRF.Rate))
	}
}

func TestWeightedNaNGuard(t *testing.T) {
	w := Weighting{Alpha: 1, Beta: 1}
	if _, err := w.ForStructure(FITNoECC, 1, 1, -5); err == nil {
		t.Error("negative N_ha accepted")
	}
	v, err := w.ForStructure(FITNoECC, 0, 1, 0)
	if err != nil || math.IsNaN(v) {
		t.Errorf("degenerate inputs: %g, %v", v, err)
	}
}
