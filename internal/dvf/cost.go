package dvf

// CostModel derives a deterministic execution time from a kernel's counted
// work. The paper measures T on its testbed; this repository replaces the
// wall clock with a fixed-latency machine model so experiments are exactly
// reproducible while preserving the paper's ratios (a kernel that does 100x
// the memory traffic gets ~100x the T). See DESIGN.md ("Substitutions").
type CostModel struct {
	RefSeconds  float64 // cost per memory reference (cache-hit path)
	MemSeconds  float64 // additional cost per main-memory access
	FlopSeconds float64 // cost per floating-point operation
}

// DefaultCostModel uses latencies typical of the paper's era: ~1 ns per
// on-chip reference, ~80 ns per DRAM access, 2 flops per ns.
var DefaultCostModel = CostModel{
	RefSeconds:  1e-9,
	MemSeconds:  80e-9,
	FlopSeconds: 0.5e-9,
}

// ExecSeconds returns the modeled execution time in seconds.
func (c CostModel) ExecSeconds(refs int64, memAccesses, flops float64) float64 {
	return float64(refs)*c.RefSeconds + memAccesses*c.MemSeconds + flops*c.FlopSeconds
}

// ExecHours returns the modeled execution time in hours, the unit DVF's
// FIT rates are expressed in.
func (c CostModel) ExecHours(refs int64, memAccesses, flops float64) float64 {
	return c.ExecSeconds(refs, memAccesses, flops) / 3600
}
