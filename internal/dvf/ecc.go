package dvf

import (
	"fmt"
	"math"

	"github.com/resilience-models/dvf/internal/tracez"
)

// ECC describes a hardware memory-protection mechanism: the residual
// failure rate it achieves at full strength (Table VII) and the
// performance cost at which that strength is reached.
type ECC struct {
	Name string
	// Rate is the residual FIT when the mechanism is fully engaged.
	Rate FIT
	// SaturationPct is the performance degradation (percent) at which the
	// mechanism reaches its full correction strength. Below it, protection
	// is partial: error checking that is throttled, sampled, or applied to
	// only part of the address space corrects proportionally fewer errors.
	// 5% reproduces the minimum of the paper's Figure 7.
	SaturationPct float64
}

// Table VII mechanisms with the Figure 7 saturation point.
var (
	NoECC    = ECC{Name: "No ECC", Rate: FITNoECC, SaturationPct: 0}
	Chipkill = ECC{Name: "Chipkill correct", Rate: FITChipkill, SaturationPct: 5}
	SECDED   = ECC{Name: "SECDED", Rate: FITSECDED, SaturationPct: 5}
)

// TableVII returns the Table VII rows in the paper's order.
func TableVII() []ECC { return []ECC{NoECC, Chipkill, SECDED} }

// EffectiveFIT returns the failure rate at a given invested performance
// degradation. Protection strength interpolates geometrically from the
// unprotected rate to the mechanism's full-strength rate as the degradation
// approaches the saturation point; past saturation the rate stays at the
// floor (more slowdown buys no further correction — which is why Figure 7
// turns upward: the longer exposure time then dominates).
func (e ECC) EffectiveFIT(degradationPct float64) FIT {
	if e.SaturationPct <= 0 || degradationPct >= e.SaturationPct {
		return e.Rate
	}
	if degradationPct <= 0 {
		return FITNoECC
	}
	c := degradationPct / e.SaturationPct
	return FIT(math.Exp((1-c)*math.Log(float64(FITNoECC)) + c*math.Log(float64(e.Rate))))
}

// SweepPoint is one point of the Figure 7 trade-off curve.
type SweepPoint struct {
	DegradationPct float64
	EffectiveFIT   FIT
	ExecHours      float64
	DVF            float64
}

// Sweep evaluates DVF(delta) = FIT_eff(delta) * T*(1+delta) * S_d * N_ha
// over a range of performance degradations for a structure of sizeBytes
// with baseHours unprotected execution time and nha memory accesses.
func (e ECC) Sweep(baseHours float64, sizeBytes int64, nha float64, degradationsPct []float64) ([]SweepPoint, error) {
	return e.SweepObs(baseHours, sizeBytes, nha, degradationsPct, nil)
}

// SweepObs is Sweep with the evaluation recorded as a span on tk, one
// span per mechanism so the Figure 7 curve assembly is visible on the
// timeline. A nil track is a no-op.
func (e ECC) SweepObs(baseHours float64, sizeBytes int64, nha float64, degradationsPct []float64, tk *tracez.Track) ([]SweepPoint, error) {
	sp := tk.Begin("dvf.sweep " + e.Name)
	defer sp.End()
	if baseHours < 0 {
		return nil, fmt.Errorf("dvf: negative base execution time %g", baseHours)
	}
	points := make([]SweepPoint, 0, len(degradationsPct))
	for _, d := range degradationsPct {
		if d < 0 {
			return nil, fmt.Errorf("dvf: negative degradation %g%%", d)
		}
		rate := e.EffectiveFIT(d)
		hours := baseHours * (1 + d/100)
		points = append(points, SweepPoint{
			DegradationPct: d,
			EffectiveFIT:   rate,
			ExecHours:      hours,
			DVF:            ForStructure(rate, hours, sizeBytes, nha),
		})
	}
	return points, nil
}

// MinPoint returns the sweep point with the smallest DVF.
func MinPoint(points []SweepPoint) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, fmt.Errorf("dvf: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.DVF < best.DVF {
			best = p
		}
	}
	return best, nil
}

// MeetsTarget reports whether a mechanism, at the given operating point,
// brings the structure's DVF at or below a pre-defined target — the
// "decide whether a specific resilience mechanism provides sufficient
// protection, given a pre-defined DVF target" scenario of Section III-A.
func MeetsTarget(p SweepPoint, target float64) bool {
	return p.DVF <= target
}
