package dvf_test

import (
	"fmt"
	"log"

	"github.com/resilience-models/dvf/internal/dvf"
)

// ExampleForStructure computes Equation 1 for a 1 Mbit structure exposed
// for a millionth of the FIT reference period.
func ExampleForStructure() {
	// 5000 FIT/Mbit * 1000 hours * 1 Mbit * 100 accesses.
	d := dvf.ForStructure(dvf.FITNoECC, 1000, 125000, 100)
	fmt.Printf("DVF_d = %.4g\n", d)
	// Output:
	// DVF_d = 0.5
}

// ExampleNewApplication aggregates per-structure DVFs into DVF_a.
func ExampleNewApplication() {
	app, err := dvf.NewApplication("demo", dvf.FITNoECC, 1e-3,
		[]string{"matrix", "vector"},
		[]int64{1 << 20, 1 << 12},
		[]float64{50000, 200})
	if err != nil {
		log.Fatal(err)
	}
	m, _ := app.Structure("matrix")
	v, _ := app.Structure("vector")
	fmt.Printf("matrix/vector vulnerability ratio: %.0f\n", m.DVF/v.DVF)
	fmt.Printf("DVF_a equals the sum: %v\n", app.Total() == m.DVF+v.DVF)
	// Output:
	// matrix/vector vulnerability ratio: 64000
	// DVF_a equals the sum: true
}

// ExampleECC_Sweep traces the Figure 7 trade-off for SECDED.
func ExampleECC_Sweep() {
	points, err := dvf.SECDED.Sweep(1e-5, 1<<20, 1e6, []float64{0, 5, 30})
	if err != nil {
		log.Fatal(err)
	}
	best, err := dvf.MinPoint(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum DVF at %.0f%% degradation\n", best.DegradationPct)
	fmt.Printf("0%% vs 30%%: protection still wins: %v\n", points[2].DVF < points[0].DVF)
	// Output:
	// minimum DVF at 5% degradation
	// 0% vs 30%: protection still wins: true
}

// ExampleWeighting shows the paper's weighting-factor refinement: under
// beta emphasis the access-heavy structure outranks the size-heavy one.
func ExampleWeighting() {
	app, err := dvf.NewApplication("demo", dvf.FITNoECC, 1e-3,
		[]string{"big", "hot"},
		[]int64{10 << 20, 1 << 20},
		[]float64{1e4, 1e5})
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := dvf.Weighting{Alpha: 1, Beta: 2}.Rescore(app)
	if err != nil {
		log.Fatal(err)
	}
	b, _ := weighted.Structure("big")
	h, _ := weighted.Structure("hot")
	fmt.Printf("beta-weighted: hot outranks big: %v\n", h.DVF > b.DVF)
	// Output:
	// beta-weighted: hot outranks big: true
}
