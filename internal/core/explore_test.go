package core

import (
	"strings"
	"testing"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
)

func TestExploreSweepsFullCross(t *testing.T) {
	k, err := NewKernel("VM")
	if err != nil {
		t.Fatal(err)
	}
	caches := []CacheConfig{cache.Profile16KB, cache.Profile8MB}
	prots := []dvf.ECC{dvf.NoECC, dvf.SECDED, dvf.Chipkill}
	res, err := Explore(k, caches, prots)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(res.Points))
	}
	// Sorted ascending by DVF.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].DVFa < res.Points[i-1].DVFa {
			t.Error("points not sorted by DVF")
		}
	}
	// The best point must be chipkill (lowest FIT floor); the worst must
	// be unprotected on the smallest cache (most memory traffic).
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Protection.Name != dvf.Chipkill.Name {
		t.Errorf("best protection = %s, want chipkill", best.Protection.Name)
	}
	worst := res.Points[len(res.Points)-1]
	if worst.Protection.Name != dvf.NoECC.Name || worst.Cache.Name != cache.Profile16KB.Name {
		t.Errorf("worst point = %s/%s, want no-ECC on 16KB", worst.Cache.Name, worst.Protection.Name)
	}
	out := res.Render()
	if !strings.Contains(out, "Chipkill") || !strings.Contains(out, "16KB") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestExploreProtectionDominatesCache(t *testing.T) {
	// For the same cache, stronger protection always yields lower DVF
	// (its 5% time overhead cannot offset orders of magnitude in FIT).
	k, err := NewKernel("FT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(k, []CacheConfig{cache.Profile16KB}, []dvf.ECC{dvf.NoECC, dvf.SECDED, dvf.Chipkill})
	if err != nil {
		t.Fatal(err)
	}
	byProt := map[string]float64{}
	for _, p := range res.Points {
		byProt[p.Protection.Name] = p.DVFa
	}
	if !(byProt[dvf.Chipkill.Name] < byProt[dvf.SECDED.Name] &&
		byProt[dvf.SECDED.Name] < byProt[dvf.NoECC.Name]) {
		t.Errorf("protection ordering broken: %v", byProt)
	}
}

func TestExploreValidation(t *testing.T) {
	k, _ := NewKernel("VM")
	if _, err := Explore(k, nil, []dvf.ECC{dvf.NoECC}); err == nil {
		t.Error("empty cache list accepted")
	}
	if _, err := Explore(k, []CacheConfig{cache.Small}, nil); err == nil {
		t.Error("empty protection list accepted")
	}
	if _, err := (&ExploreResult{}).Best(); err == nil {
		t.Error("empty result Best succeeded")
	}
}
