package core

import (
	"math"
	"testing"

	"github.com/resilience-models/dvf/internal/aspen"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
)

// These tests close the paper's Figure 3 loop: a kernel expresses itself
// as extended-Aspen source, the compiler evaluates it, and the result is
// compared against the kernel's native Go-side CGPMAC models.

func sourceFor(t *testing.T, k kernels.Kernel) (kernels.AspenSourcer, *kernels.RunInfo, string) {
	t.Helper()
	src, ok := k.(kernels.AspenSourcer)
	if !ok {
		t.Fatalf("%s does not implement AspenSourcer", k.Name())
	}
	info, err := k.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	text, err := src.AspenSource(info)
	if err != nil {
		t.Fatal(err)
	}
	return src, info, text
}

// directNHa evaluates the kernel's native models on cfg, keyed by structure.
func directNHa(t *testing.T, k kernels.Kernel, info *kernels.RunInfo, cfg cache.Config) map[string]float64 {
	t.Helper()
	specs, err := k.Models(info)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, spec := range specs {
		v, err := spec.Estimator.MemoryAccesses(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out[spec.Structure] = v
	}
	return out
}

func TestAspenSourceMatchesDirectModels(t *testing.T) {
	// Exact agreement expected where the DSL clause is the same closed
	// form the kernel uses natively.
	cases := []struct {
		kernel    kernels.Kernel
		exact     []string // structures with exact agreement
		tolerance map[string]float64
	}{
		{kernel: kernels.NewVM(1000), exact: []string{"A", "B", "C"}},
		{kernel: kernels.NewMC(1000), exact: []string{"G", "E"}},
		{
			kernel: kernels.NewNB(1000),
			// The DSL's random clause is the paper's plain uniform model;
			// the native model is the frequency-weighted refinement. They
			// agree exactly when the whole tree fits the cache, so compare
			// on the large cache below; P streams identically.
			exact: []string{"P"},
		},
	}
	for _, c := range cases {
		t.Run(c.kernel.Name(), func(t *testing.T) {
			k, info, text := sourceFor(t, c.kernel)
			model, err := aspen.Parse(text)
			if err != nil {
				t.Fatalf("generated source does not parse: %v\n%s", err, text)
			}
			if err := aspen.Check(model); err != nil {
				t.Fatalf("generated source fails checks: %v\n%s", err, text)
			}
			for _, cfg := range []cache.Config{cache.Small, cache.Large} {
				ev, err := aspen.Evaluate(model, aspen.WithCache(cfg))
				if err != nil {
					t.Fatal(err)
				}
				direct := directNHa(t, k, info, cfg)
				for _, name := range c.exact {
					got, err := ev.Structure(name)
					if err != nil {
						t.Fatal(err)
					}
					if got.NHa != direct[name] {
						t.Errorf("%s on %s: aspen %g, direct %g",
							name, cfg.Name, got.NHa, direct[name])
					}
				}
			}
		})
	}
}

func TestAspenSourceNBTreeAgreesWhenResident(t *testing.T) {
	k, info, text := sourceFor(t, kernels.NewNB(1000))
	ev, err := AnalyzeSource(text, aspen.WithCache(cache.Large))
	if err != nil {
		t.Fatal(err)
	}
	direct := directNHa(t, k, info, cache.Large)
	got, err := ev.Structure("T")
	if err != nil {
		t.Fatal(err)
	}
	// On the 4MB cache the whole tree is resident: both the plain and the
	// weighted model reduce to the compulsory load.
	if got.NHa != direct["T"] {
		t.Errorf("resident tree: aspen %g, direct %g", got.NHa, direct["T"])
	}
}

func TestAspenSourceFTReproducesJump(t *testing.T) {
	_, info, text := sourceFor(t, kernels.NewFT(2048))
	small, err := AnalyzeSource(text, aspen.WithCache(cache.Profile16KB))
	if err != nil {
		t.Fatal(err)
	}
	large, err := AnalyzeSource(text, aspen.WithCache(cache.Profile128KB))
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := small.Structure("X")
	x2, _ := large.Structure("X")
	// Per-byte traffic jump below the 32KB working set, as in Figure 5(e).
	if x1.NHa*8 < 5*x2.NHa*16 {
		t.Errorf("generated FT model shows no jump: 16KB %g vs 128KB %g", x1.NHa, x2.NHa)
	}
	// And the generated sequential-sweep template must match the exact
	// butterfly template on both sides of the capacity cliff (both are
	// full traversals per pass).
	k := kernels.NewFT(2048)
	direct := directNHa(t, k, info, cache.Profile16KB)
	if math.Abs(x1.NHa-direct["X"])/direct["X"] > 0.10 {
		t.Errorf("thrash side: aspen %g vs direct %g beyond 10%%", x1.NHa, direct["X"])
	}
}

func TestAspenSourceCGWithinFactor(t *testing.T) {
	k := kernels.NewCG(200, 5)
	_, info, text := sourceFor(t, k)
	ev, err := AnalyzeSource(text, aspen.WithCache(cache.Small))
	if err != nil {
		t.Fatal(err)
	}
	direct := directNHa(t, k, info, cache.Small)
	// A and x use identical closed forms modulo the streaming-vs-reuse
	// phrasing of A (both reduce to per-iteration re-streaming here).
	a, _ := ev.Structure("A")
	if math.Abs(a.NHa-direct["A"])/direct["A"] > 0.02 {
		t.Errorf("A: aspen %g vs direct %g", a.NHa, direct["A"])
	}
	// p's DSL clause is the coarse closed form, while the native model
	// replays the pseudocode template; they must stay within a factor of
	// a few (the ablation bench quantifies the residual).
	p, _ := ev.Structure("p")
	ratio := p.NHa / direct["p"]
	if ratio > 4 || ratio < 0.25 {
		t.Errorf("p: aspen %g vs direct %g (ratio %g)", p.NHa, direct["p"], ratio)
	}
}

func TestAllSourcersGenerateValidModels(t *testing.T) {
	ks := []kernels.Kernel{
		kernels.NewVM(1000), kernels.NewCG(100, 4), kernels.NewNB(500),
		kernels.NewFT(256), kernels.NewMC(500),
	}
	for _, k := range ks {
		_, _, text := sourceFor(t, k)
		if _, err := AnalyzeSource(text, aspen.WithCache(cache.Small)); err != nil {
			t.Errorf("%s: generated model fails end to end: %v", k.Name(), err)
		}
	}
}
