package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/experiments"
)

// DesignPoint is one cell of a design-space exploration: an application
// on a candidate machine (cache geometry plus memory protection), with its
// modeled vulnerability and the performance proxy the protection costs.
type DesignPoint struct {
	Kernel     string
	Cache      CacheConfig
	Protection dvf.ECC
	// DVFa is the application DVF with the protection fully engaged (at
	// its saturation operating point, including the exposure-time cost).
	DVFa float64
	// ExecHours is the modeled execution time at that operating point.
	ExecHours float64
}

// ExploreResult is a completed sweep, sorted by ascending DVF.
type ExploreResult struct {
	Points []DesignPoint
}

// Explore evaluates every (cache, protection) combination for one kernel —
// the "rapid exploration of new algorithm and architectures" workflow the
// paper inherits from Aspen, with resilience as the objective. Cells are
// independent and run concurrently; cost is one kernel profiling run plus
// one model evaluation per cell.
func Explore(k Kernel, caches []CacheConfig, protections []dvf.ECC) (*ExploreResult, error) {
	if len(caches) == 0 || len(protections) == 0 {
		return nil, fmt.Errorf("core: empty design space")
	}
	type cell struct {
		cfg  CacheConfig
		prot dvf.ECC
	}
	var cells []cell
	for _, cfg := range caches {
		for _, prot := range protections {
			cells = append(cells, cell{cfg: cfg, prot: prot})
		}
	}
	points := make([]DesignPoint, len(cells))
	err := experiments.Parallel(len(cells), 0, func(i int) error {
		var err error
		points[i], err = explorePoint(k, cells[i].cfg, cells[i].prot)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &ExploreResult{Points: points}
	sort.SliceStable(res.Points, func(i, j int) bool {
		return res.Points[i].DVFa < res.Points[j].DVFa
	})
	return res, nil
}

func explorePoint(k Kernel, cfg CacheConfig, prot dvf.ECC) (DesignPoint, error) {
	// Unprotected analysis first: the protection then rescales the rate
	// and stretches the exposure time by its saturation overhead.
	app, err := experiments.ProfileKernel(k, cfg, dvf.FITNoECC, dvf.DefaultCostModel)
	if err != nil {
		return DesignPoint{}, err
	}
	overhead := 1 + prot.SaturationPct/100
	hours := app.ExecHours * overhead
	var total float64
	for _, s := range app.Structures {
		total += dvf.ForStructure(prot.EffectiveFIT(prot.SaturationPct), hours, s.Bytes, s.NHa)
	}
	return DesignPoint{
		Kernel:     k.Name(),
		Cache:      cfg,
		Protection: prot,
		DVFa:       total,
		ExecHours:  hours,
	}, nil
}

// Best returns the point with the lowest DVF.
func (r *ExploreResult) Best() (DesignPoint, error) {
	if len(r.Points) == 0 {
		return DesignPoint{}, fmt.Errorf("core: empty exploration")
	}
	return r.Points[0], nil
}

// Render formats the sweep, most resilient configuration first.
func (r *ExploreResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design-space exploration")
	if len(r.Points) > 0 {
		fmt.Fprintf(&b, ": %s", r.Points[0].Kernel)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s %-18s %14s %12s\n", "cache", "protection", "DVF_a", "T (s)")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-22s %-18s %14.6g %12.4g\n",
			p.Cache.Name, p.Protection.Name, p.DVFa, p.ExecHours*3600)
	}
	return b.String()
}
