package core

import (
	"math"
	"testing"

	"github.com/resilience-models/dvf/internal/aspen"
	"github.com/resilience-models/dvf/internal/dvf"
)

func TestNewKernelAndKernels(t *testing.T) {
	if len(Kernels()) != 6 {
		t.Fatalf("Kernels() = %d, want 6", len(Kernels()))
	}
	k, err := NewKernel("FT")
	if err != nil || k.Name() != "FT" {
		t.Fatalf("NewKernel(FT) = %v, %v", k, err)
	}
	if _, err := NewKernel("??"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestAnalyzeKernelEndToEnd(t *testing.T) {
	k, err := NewKernel("VM")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeKernel(k, CacheSmall, NoECC)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= 0 || len(rep.Structures) != 3 {
		t.Errorf("report: %+v", rep)
	}
	// Chipkill cuts the same analysis by the FIT ratio.
	prot, err := AnalyzeKernel(k, CacheSmall, Chipkill)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rep.Total() / prot.Total()
	if math.Abs(ratio-float64(NoECC)/float64(Chipkill)) > 1e-6*ratio {
		t.Errorf("FIT scaling broken: ratio %g", ratio)
	}
}

func TestVerifyKernelFacade(t *testing.T) {
	k, err := NewKernel("VM")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := VerifyKernel(k, CacheSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.ErrorPct()) > 15 {
			t.Errorf("%s/%s error %.1f%%", r.Kernel, r.Structure, r.ErrorPct())
		}
	}
}

func TestAnalyzeSource(t *testing.T) {
	src := `
model demo {
    param n = 4096
    machine {
        cache { assoc 4 sets 64 line 32 }
        memory { fit 5000 }
    }
    data A { size 8*n  pattern streaming(8, n, 1) }
    kernel main { flops 2*n }
}`
	ev, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ev.Structure("A")
	if err != nil {
		t.Fatal(err)
	}
	if a.NHa != 1024 { // 32768 bytes / 32-byte lines
		t.Errorf("N_ha = %g, want 1024", a.NHa)
	}
	// Override the cache through the façade option plumbing.
	ev2, err := AnalyzeSource(src, aspen.WithCache(Cache8MB))
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := ev2.Structure("A")
	if a2.NHa != 512 { // 64-byte lines
		t.Errorf("overridden N_ha = %g, want 512", a2.NHa)
	}
}

func TestAnalyzeSourceRejectsBadModels(t *testing.T) {
	if _, err := AnalyzeSource("model {"); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := AnalyzeSource(`model m { data A { size 8 } }`); err == nil {
		t.Error("semantic error accepted")
	}
}

func TestAnalyzeModelChecksFirst(t *testing.T) {
	m, err := aspen.Parse(`model m { data A { size 8 } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeModel(m); err == nil {
		t.Error("AnalyzeModel skipped the checker")
	}
}

func TestSelectProtectionPicksWeakestSufficient(t *testing.T) {
	const (
		hours = 1e-3
		bytes = 1 << 20
		nha   = 1e6
	)
	unprotected := dvf.ForStructure(NoECC, hours, bytes, nha)

	// A lax target: no ECC at all suffices.
	mech, _, err := SelectProtection(hours, bytes, nha, unprotected*2)
	if err != nil || mech.Name != "No ECC" {
		t.Errorf("lax target picked %v, %v", mech.Name, err)
	}
	// A moderate target: SECDED's floor reaches it, no ECC does not.
	secdedBest := dvf.ForStructure(SECDED, hours*1.05, bytes, nha)
	mech, point, err := SelectProtection(hours, bytes, nha, secdedBest*1.5)
	if err != nil || mech.Name != "SECDED" {
		t.Errorf("moderate target picked %v, %v", mech.Name, err)
	}
	if point.DegradationPct != 5 {
		t.Errorf("operating point at %g%%, want 5%%", point.DegradationPct)
	}
	// A brutal target: only chipkill.
	chipBest := dvf.ForStructure(Chipkill, hours*1.05, bytes, nha)
	mech, _, err = SelectProtection(hours, bytes, nha, chipBest*1.5)
	if err != nil || mech.Name != "Chipkill correct" {
		t.Errorf("strict target picked %v, %v", mech.Name, err)
	}
	// An impossible target.
	if _, _, err := SelectProtection(hours, bytes, nha, chipBest/1e6); err == nil {
		t.Error("impossible target satisfied")
	}
}
