package core_test

import (
	"fmt"
	"log"

	"github.com/resilience-models/dvf/internal/aspen"
	"github.com/resilience-models/dvf/internal/core"
)

// ExampleAnalyzeKernel computes the DVF report of the vector-multiplication
// kernel on the paper's small verification cache.
func ExampleAnalyzeKernel() {
	kernel, err := core.NewKernel("VM")
	if err != nil {
		log.Fatal(err)
	}
	report, err := core.AnalyzeKernel(kernel, core.CacheSmall, core.NoECC)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range report.Structures {
		fmt.Printf("%s: N_ha=%.0f\n", s.Name, s.NHa)
	}
	// Output:
	// A: N_ha=1000
	// B: N_ha=500
	// C: N_ha=250
}

// ExampleAnalyzeSource evaluates a hand-written extended-Aspen model.
func ExampleAnalyzeSource() {
	ev, err := core.AnalyzeSource(`
model demo {
    param n = 4096
    machine {
        cache { assoc 4 sets 64 line 32 }
        memory { fit 5000 }
    }
    data A { size 8*n  pattern streaming(8, n, 1) }
    kernel main { flops 2*n }
}`)
	if err != nil {
		log.Fatal(err)
	}
	a, err := ev.Structure("A")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A: %d bytes, N_ha=%.0f\n", a.Bytes, a.NHa)
	// Output:
	// A: 32768 bytes, N_ha=1024
}

// ExampleVerifyKernel validates the analytical model against the cache
// simulator, the Figure 4 procedure.
func ExampleVerifyKernel() {
	kernel, err := core.NewKernel("VM")
	if err != nil {
		log.Fatal(err)
	}
	rows, err := core.VerifyKernel(kernel, core.CacheSmall)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s: model=%.0f simulated=%.0f\n", r.Structure, r.Model, r.Simulated)
	}
	// Output:
	// A: model=1000 simulated=1000
	// B: model=500 simulated=500
	// C: model=250 simulated=250
}

// ExampleSelectProtection picks the weakest Table VII mechanism meeting a
// DVF budget.
func ExampleSelectProtection() {
	// A structure with heavy exposure: 1 MB touched a million times over
	// a millisecond-scale run (unprotected DVF ~1.2e-5); the budget of
	// 5e-6 rules out bare DRAM but is within SECDED's reach.
	mech, point, err := core.SelectProtection(1e-3/3600, 1<<20, 1e6, 5e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at %.0f%% degradation\n", mech.Name, point.DegradationPct)
	// Output:
	// SECDED at 5% degradation
}

// ExampleAnalyzeModel shows the parse-check-evaluate pipeline with a cache
// override, sweeping one model across machines.
func ExampleAnalyzeModel() {
	m, err := aspen.Parse(`
model sweep {
    data X { size 65536  pattern streaming(8, 8192, 1) }
}`)
	if err != nil {
		log.Fatal(err)
	}
	for _, cfg := range []core.CacheConfig{core.CacheSmall, core.CacheLarge} {
		ev, err := core.AnalyzeModel(m, aspen.WithCache(cfg))
		if err != nil {
			log.Fatal(err)
		}
		x, _ := ev.Structure("X")
		fmt.Printf("line %dB: N_ha=%.0f\n", cfg.LineSize, x.NHa)
	}
	// Output:
	// line 32B: N_ha=2048
	// line 64B: N_ha=1024
}
