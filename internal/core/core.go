// Package core is the façade over the DVF modeling toolkit: it wires the
// paper's Figure 3 workflow — application information and hardware
// information in, per-data-structure DVF out — into a handful of calls.
//
// Three entry points cover the common uses:
//
//   - AnalyzeKernel: run one of the built-in Table II kernels, model its
//     data structures with CGPMAC, and report DVFs on a cache of choice.
//   - AnalyzeModel / AnalyzeSource: evaluate a user-written extended-Aspen
//     model (the DSL of Section III-D).
//   - VerifyKernel: compare a kernel's analytical model against the cache
//     simulator driven by the kernel's own reference trace (Figure 4).
//
// Everything underneath remains available for finer control: package
// patterns exposes the four access-pattern models, package cache the LRU
// simulator, package aspen the DSL, package dvf the metric itself, and
// package experiments the paper's figure-by-figure harnesses.
package core

import (
	"fmt"

	"github.com/resilience-models/dvf/internal/analytic"
	"github.com/resilience-models/dvf/internal/aspen"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/experiments"
	"github.com/resilience-models/dvf/internal/kernels"
)

// Re-exported types so that callers of the façade rarely need to import
// the inner packages directly.
type (
	// CacheConfig is a last-level cache geometry (Table III / Table IV).
	CacheConfig = cache.Config
	// FIT is a memory failure rate in failures/(1e9 h * Mbit) (Table VII).
	FIT = dvf.FIT
	// Report is a per-application DVF breakdown (Equations 1 and 2).
	Report = dvf.Application
	// Kernel is one of the built-in Table II algorithms.
	Kernel = kernels.Kernel
	// VerificationRow is one model-vs-simulator comparison (Figure 4).
	VerificationRow = experiments.Fig4Row
	// AnalyticProfile is a trace-free per-structure miss profile solved
	// from a kernel's affine access pattern (engine=analytic).
	AnalyticProfile = analytic.Profile
	// AnalyticRow is one analytic-vs-simulated differential comparison.
	AnalyticRow = experiments.AnalyticRow
)

// The Table IV cache configurations.
var (
	CacheSmall = cache.Small
	CacheLarge = cache.Large
	Cache16KB  = cache.Profile16KB
	Cache128KB = cache.Profile128KB
	Cache1MB   = cache.Profile1MB
	Cache8MB   = cache.Profile8MB
)

// The Table VII failure rates.
const (
	NoECC    = dvf.FITNoECC
	Chipkill = dvf.FITChipkill
	SECDED   = dvf.FITSECDED
)

// NewKernel constructs a built-in kernel by its Table II code (VM, CG, NB,
// MG, FT or MC) at the paper's verification input size.
func NewKernel(code string) (Kernel, error) {
	return kernels.ByName(code)
}

// Kernels returns the six built-in kernels at the verification sizes.
func Kernels() []Kernel {
	return kernels.VerificationSuite()
}

// AnalyzeKernel runs the kernel (untraced), models each of its major data
// structures with CGPMAC on the given cache, and returns the DVF report
// under the given failure rate.
func AnalyzeKernel(k Kernel, cfg CacheConfig, rate FIT) (*Report, error) {
	return experiments.ProfileKernel(k, cfg, rate, dvf.DefaultCostModel)
}

// VerifyKernel traces the kernel through the LRU cache simulator and
// compares the analytical estimates with the simulated main-memory access
// counts — the model-validation procedure of Section IV-A.
func VerifyKernel(k Kernel, cfg CacheConfig) ([]VerificationRow, error) {
	return experiments.VerifyKernel(k, cfg)
}

// AutoWorkers is the worker-count sentinel that lets the toolkit pick the
// replay engine adaptively (cache.NewAutoEngine): sequential below the
// sharding crossover, set-sharded above it. Pass it wherever a workers
// count is accepted (VerifyKernelWorkers, the experiment drivers, the
// CLIs' -workers flags).
const AutoWorkers = experiments.AutoWorkers

// VerifyKernelWorkers is VerifyKernel with an explicit replay-engine
// worker count: 1 sequential, >1 set-sharded, 0 one worker per CPU, and
// AutoWorkers the adaptive crossover choice. The rows are bit-identical
// for every setting.
func VerifyKernelWorkers(k Kernel, cfg CacheConfig, workers int) ([]VerificationRow, error) {
	return experiments.VerifyKernelWorkers(k, cfg, workers)
}

// Affine reports whether the kernel has a static affine access pattern,
// i.e. whether the trace-free analytic engine applies to it (VM, CG, MG
// and FT of the Table II suite; NB and MC are data- or RNG-dependent).
func Affine(k Kernel) bool {
	_, ok := kernels.Affine(k)
	return ok
}

// SolveAnalytic runs the trace-free analytic engine: it derives the
// kernel's per-structure main-memory access counts symbolically from its
// affine loop structure, in microseconds instead of a full trace replay.
// The result matches the sequential simulator within the documented
// per-kernel tolerances (analytic.Tolerance, enforced by the differential
// wall and by dvf-verify -engine analytic).
func SolveAnalytic(k Kernel, cfg CacheConfig) (*AnalyticProfile, error) {
	d, ok := kernels.Affine(k)
	if !ok {
		return nil, fmt.Errorf("core: %s has no affine access pattern (engine=analytic needs one)", k.Name())
	}
	return analytic.Solve(d, cfg)
}

// AnalyzeKernelAnalytic is AnalyzeKernel with the per-structure memory
// access counts produced by the analytic engine instead of the CGPMAC
// estimators — the engine=analytic path to a DVF report.
func AnalyzeKernelAnalytic(k Kernel, cfg CacheConfig, rate FIT) (*Report, error) {
	return experiments.ProfileKernelAnalytic(k, cfg, rate, dvf.DefaultCostModel)
}

// VerifyKernelAnalytic compares the analytic engine against the sequential
// cache simulator for one kernel and cache — the engine's live
// differential (dvf-verify -engine analytic).
func VerifyKernelAnalytic(k Kernel, cfg CacheConfig) ([]AnalyticRow, error) {
	rows, _, err := experiments.VerifyKernelAnalytic(k, cfg)
	return rows, err
}

// AnalyzeSource parses, checks and evaluates an extended-Aspen model from
// source text. opts may override the machine description.
func AnalyzeSource(src string, opts ...aspen.Option) (*aspen.Evaluation, error) {
	m, err := aspen.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := aspen.Check(m); err != nil {
		return nil, err
	}
	return aspen.Evaluate(m, opts...)
}

// AnalyzeModel evaluates an already-parsed extended-Aspen model.
func AnalyzeModel(m *aspen.Model, opts ...aspen.Option) (*aspen.Evaluation, error) {
	if err := aspen.Check(m); err != nil {
		return nil, err
	}
	return aspen.Evaluate(m, opts...)
}

// SelectProtection evaluates the Table VII mechanisms for a structure and
// returns the cheapest one (by full-strength residual FIT being highest,
// i.e. weakest sufficient protection) whose best operating point meets the
// DVF target — the "given a pre-defined DVF target" scenario of
// Section III-A. It returns an error when even chipkill cannot meet it.
func SelectProtection(baseHours float64, sizeBytes int64, nha, target float64) (dvf.ECC, dvf.SweepPoint, error) {
	degr := experiments.Fig7Degradations()
	// Weakest first: no protection, SECDED, chipkill.
	for _, mech := range []dvf.ECC{dvf.NoECC, dvf.SECDED, dvf.Chipkill} {
		points, err := mech.Sweep(baseHours, sizeBytes, nha, degr)
		if err != nil {
			return dvf.ECC{}, dvf.SweepPoint{}, err
		}
		best, err := dvf.MinPoint(points)
		if err != nil {
			return dvf.ECC{}, dvf.SweepPoint{}, err
		}
		if dvf.MeetsTarget(best, target) {
			return mech, best, nil
		}
	}
	return dvf.ECC{}, dvf.SweepPoint{}, fmt.Errorf(
		"core: no Table VII mechanism reaches DVF target %g", target)
}
