// Package mathx provides the combinatorial and probabilistic primitives
// that underpin the CGPMAC analytical models of the DVF paper (SC 2014):
// log-space binomial coefficients, the hypergeometric distribution used by
// Equations 5-7 and 12, and binomial (Bernoulli-trial) set-occupancy
// distributions used by Equation 8.
//
// All heavy computations run in log space so that the models remain stable
// for the large populations that appear in DVF profiling (for example the
// 10^5-element Monte Carlo energy grid), where direct binomial coefficients
// overflow float64 almost immediately.
package mathx

import (
	"errors"
	"math"
)

// ErrDomain is returned (or wrapped) when a distribution is evaluated
// outside its support or constructed with invalid parameters.
var ErrDomain = errors.New("mathx: parameter outside domain")

// LogFactorial returns ln(n!) computed via the log-gamma function.
// It panics if n is negative, since a negative factorial indicates a
// programming error in a caller rather than a data-dependent condition.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic("mathx: LogFactorial of negative n")
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// LogBinomial returns ln(C(n, k)). Out-of-range k (k < 0 or k > n) yields
// -Inf, matching the convention that the corresponding coefficient is zero;
// this lets hypergeometric sums skip impossible terms without special cases.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Binomial returns C(n, k) as a float64. For arguments whose result exceeds
// the float64 range the result is +Inf; callers needing large-population
// ratios should stay in log space via LogBinomial.
func Binomial(n, k int) float64 {
	return math.Exp(LogBinomial(n, k))
}

// BinomialInt64 returns C(n, k) using exact integer arithmetic.
// It reports an error when the value does not fit in an int64.
func BinomialInt64(n, k int) (int64, error) {
	if k < 0 || k > n || n < 0 {
		return 0, ErrDomain
	}
	if k > n-k {
		k = n - k
	}
	var res int64 = 1
	for i := 1; i <= k; i++ {
		num := int64(n - k + i)
		// res * num may overflow; detect via division check.
		if res > math.MaxInt64/num {
			return 0, errors.New("mathx: binomial overflows int64")
		}
		res = res * num / int64(i)
	}
	return res, nil
}

// Hypergeometric is the distribution of the number of "successes" drawn
// when sampling m items without replacement from a population of size n
// containing k successes.
//
// In the random-access model of the paper (Equation 5), the population is
// the N elements of a data structure, the m draws are the elements resident
// in the cache partition, and the k successes are the distinct elements
// visited in one iteration; X = k - (successes drawn) is then the number of
// visited elements that miss the cache.
type Hypergeometric struct {
	N int // population size
	K int // number of success states in the population
	M int // number of draws
}

// Valid reports whether the parameters describe a proper distribution.
func (h Hypergeometric) Valid() bool {
	return h.N >= 0 && h.K >= 0 && h.M >= 0 && h.K <= h.N && h.M <= h.N
}

// SupportMin returns the smallest value with nonzero probability.
func (h Hypergeometric) SupportMin() int {
	return maxInt(0, h.M+h.K-h.N)
}

// SupportMax returns the largest value with nonzero probability.
func (h Hypergeometric) SupportMax() int {
	return minInt(h.M, h.K)
}

// LogPMF returns ln P(successes = s). Values outside the support yield -Inf.
func (h Hypergeometric) LogPMF(s int) float64 {
	if !h.Valid() {
		return math.NaN()
	}
	if s < h.SupportMin() || s > h.SupportMax() {
		return math.Inf(-1)
	}
	return LogBinomial(h.K, s) + LogBinomial(h.N-h.K, h.M-s) - LogBinomial(h.N, h.M)
}

// PMF returns P(successes = s).
func (h Hypergeometric) PMF(s int) float64 {
	return math.Exp(h.LogPMF(s))
}

// Mean returns E[successes] = M*K/N.
func (h Hypergeometric) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.M) * float64(h.K) / float64(h.N)
}

// ExpectedValue returns E[f(S)] where S is hypergeometric, by summing over
// the full support. f is evaluated once per support point.
func (h Hypergeometric) ExpectedValue(f func(s int) float64) float64 {
	if !h.Valid() {
		return math.NaN()
	}
	var sum float64
	for s := h.SupportMin(); s <= h.SupportMax(); s++ {
		sum += h.PMF(s) * f(s)
	}
	return sum
}

// Binomial01 is a binomial distribution B(n, p) truncated and "capped" at a
// ceiling c: all probability mass of outcomes >= c is accumulated onto c.
//
// This realizes Equation 8 of the paper: a data structure of F blocks places
// each block into one of NA cache sets with probability p = 1/NA (a
// Bernoulli trial per block), and a single set can hold at most CA
// (associativity) of them, so the occupancy distribution is the binomial
// capped at the associativity.
type Binomial01 struct {
	N   int     // number of trials (blocks of the data structure)
	P   float64 // success probability (1 / number-of-sets)
	Cap int     // ceiling (cache associativity); Cap < 0 means "no cap"
}

// Valid reports whether the parameters describe a proper distribution.
func (b Binomial01) Valid() bool {
	return b.N >= 0 && b.P >= 0 && b.P <= 1
}

// logPMFRaw is the uncapped binomial log-PMF.
func (b Binomial01) logPMFRaw(x int) float64 {
	if x < 0 || x > b.N {
		return math.Inf(-1)
	}
	switch {
	case b.P == 0:
		if x == 0 {
			return 0
		}
		return math.Inf(-1)
	case b.P == 1:
		if x == b.N {
			return 0
		}
		return math.Inf(-1)
	}
	return LogBinomial(b.N, x) + float64(x)*math.Log(b.P) + float64(b.N-x)*math.Log1p(-b.P)
}

// PMF returns P(X = x) with the capping rule applied: when Cap >= 0 and
// x == Cap, the result is P(raw X >= Cap); when x > Cap the result is 0.
func (b Binomial01) PMF(x int) float64 {
	if !b.Valid() || x < 0 {
		return 0
	}
	if b.Cap < 0 || x < b.Cap {
		return math.Exp(b.logPMFRaw(x))
	}
	if x > b.Cap {
		return 0
	}
	// Tail mass P(raw >= Cap).
	var tail float64
	for i := b.Cap; i <= b.N; i++ {
		tail += math.Exp(b.logPMFRaw(i))
	}
	return tail
}

// Max returns the largest outcome with nonzero probability.
func (b Binomial01) Max() int {
	if b.Cap >= 0 && b.Cap < b.N {
		return b.Cap
	}
	return b.N
}

// Mean returns the expectation of the capped distribution.
func (b Binomial01) Mean() float64 {
	var sum float64
	for x := 0; x <= b.Max(); x++ {
		sum += float64(x) * b.PMF(x)
	}
	return sum
}

// ExpectedValue returns E[f(X)] over the capped distribution.
func (b Binomial01) ExpectedValue(f func(x int) float64) float64 {
	var sum float64
	for x := 0; x <= b.Max(); x++ {
		sum += b.PMF(x) * f(x)
	}
	return sum
}

// CeilDiv returns ceil(a/b) for positive b. It panics when b <= 0, which in
// the models would mean a zero-sized cache line or element.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("mathx: CeilDiv with non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (falling back to absolute tolerance for values near zero).
func ApproxEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-12 {
		return diff < 1e-12
	}
	return diff/scale <= rel
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
