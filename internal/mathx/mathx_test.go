package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		got := math.Exp(LogFactorial(n))
		if !ApproxEqual(got, w, 1e-10) {
			t.Errorf("exp(LogFactorial(%d)) = %g, want %g", n, got, w)
		}
	}
}

func TestLogFactorialNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogFactorial(-1) did not panic")
		}
	}()
	LogFactorial(-1)
}

func TestBinomialExactValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 5, 252},
		{52, 5, 2598960}, {20, 10, 184756},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); !ApproxEqual(got, c.want, 1e-9) {
			t.Errorf("Binomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialOutOfRangeIsZero(t *testing.T) {
	for _, c := range [][2]int{{5, -1}, {5, 6}, {-1, 0}, {0, 1}} {
		if got := Binomial(c[0], c[1]); got != 0 {
			t.Errorf("Binomial(%d,%d) = %g, want 0", c[0], c[1], got)
		}
		if lg := LogBinomial(c[0], c[1]); !math.IsInf(lg, -1) {
			t.Errorf("LogBinomial(%d,%d) = %g, want -Inf", c[0], c[1], lg)
		}
	}
}

func TestBinomialInt64MatchesFloat(t *testing.T) {
	for n := 0; n <= 30; n++ {
		for k := 0; k <= n; k++ {
			exact, err := BinomialInt64(n, k)
			if err != nil {
				t.Fatalf("BinomialInt64(%d,%d): %v", n, k, err)
			}
			if got := Binomial(n, k); !ApproxEqual(got, float64(exact), 1e-9) {
				t.Errorf("Binomial(%d,%d) = %g, want %d", n, k, got, exact)
			}
		}
	}
}

func TestBinomialInt64Overflow(t *testing.T) {
	if _, err := BinomialInt64(200, 100); err == nil {
		t.Error("BinomialInt64(200,100) should overflow int64")
	}
	if _, err := BinomialInt64(5, 9); err == nil {
		t.Error("BinomialInt64(5,9) should report domain error")
	}
}

// Pascal's rule C(n,k) = C(n-1,k-1) + C(n-1,k) as a property test.
func TestBinomialPascalProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 1
		k := int(kRaw) % (n + 1)
		if k == 0 {
			return Binomial(n, 0) == 1
		}
		lhs := Binomial(n, k)
		rhs := Binomial(n-1, k-1) + Binomial(n-1, k)
		return ApproxEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHypergeometricSumsToOne(t *testing.T) {
	cases := []Hypergeometric{
		{N: 10, K: 4, M: 3},
		{N: 100, K: 40, M: 25},
		{N: 1000, K: 200, M: 512},
		{N: 7, K: 7, M: 3},
		{N: 7, K: 0, M: 3},
		{N: 5, K: 2, M: 0},
	}
	for _, h := range cases {
		var sum float64
		for s := h.SupportMin(); s <= h.SupportMax(); s++ {
			sum += h.PMF(s)
		}
		if !ApproxEqual(sum, 1, 1e-9) {
			t.Errorf("%+v: PMF sums to %g, want 1", h, sum)
		}
	}
}

func TestHypergeometricMeanMatchesExpectedValue(t *testing.T) {
	h := Hypergeometric{N: 500, K: 120, M: 77}
	mean := h.ExpectedValue(func(s int) float64 { return float64(s) })
	if !ApproxEqual(mean, h.Mean(), 1e-9) {
		t.Errorf("expectation %g != closed-form mean %g", mean, h.Mean())
	}
}

func TestHypergeometricKnownValue(t *testing.T) {
	// Drawing 5 cards from a 52-card deck with 13 hearts:
	// P(exactly 2 hearts) = C(13,2)*C(39,3)/C(52,5).
	h := Hypergeometric{N: 52, K: 13, M: 5}
	want := Binomial(13, 2) * Binomial(39, 3) / Binomial(52, 5)
	if got := h.PMF(2); !ApproxEqual(got, want, 1e-9) {
		t.Errorf("PMF(2) = %g, want %g", got, want)
	}
}

func TestHypergeometricLargePopulationStable(t *testing.T) {
	// Populations this large overflow direct binomials; log-space must hold.
	h := Hypergeometric{N: 100000, K: 30000, M: 50000}
	p := h.PMF(15000) // the mode: should be small but finite and positive
	if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
		t.Fatalf("PMF at mode = %g, want finite positive", p)
	}
	mean := h.Mean()
	if !ApproxEqual(mean, 15000, 1e-9) {
		t.Errorf("mean = %g, want 15000", mean)
	}
}

func TestHypergeometricInvalid(t *testing.T) {
	h := Hypergeometric{N: 5, K: 9, M: 2}
	if h.Valid() {
		t.Error("K > N should be invalid")
	}
	if !math.IsNaN(h.LogPMF(1)) {
		t.Error("LogPMF on invalid distribution should be NaN")
	}
	if !math.IsNaN(h.ExpectedValue(func(int) float64 { return 1 })) {
		t.Error("ExpectedValue on invalid distribution should be NaN")
	}
}

func TestHypergeometricSupportProperty(t *testing.T) {
	f := func(nRaw, kRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 1)
		m := int(mRaw) % (n + 1)
		h := Hypergeometric{N: n, K: k, M: m}
		lo, hi := h.SupportMin(), h.SupportMax()
		if lo > hi {
			return false
		}
		if h.PMF(lo-1) != 0 || h.PMF(hi+1) != 0 {
			return false
		}
		var sum float64
		for s := lo; s <= hi; s++ {
			sum += h.PMF(s)
		}
		return ApproxEqual(sum, 1, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinomial01UncappedSumsToOne(t *testing.T) {
	b := Binomial01{N: 64, P: 1.0 / 16, Cap: -1}
	var sum float64
	for x := 0; x <= b.Max(); x++ {
		sum += b.PMF(x)
	}
	if !ApproxEqual(sum, 1, 1e-9) {
		t.Errorf("uncapped PMF sums to %g", sum)
	}
	if !ApproxEqual(b.Mean(), 4, 1e-9) {
		t.Errorf("uncapped mean = %g, want 4", b.Mean())
	}
}

func TestBinomial01CappedTailMass(t *testing.T) {
	b := Binomial01{N: 40, P: 0.25, Cap: 8}
	var sum float64
	for x := 0; x <= b.Max(); x++ {
		sum += b.PMF(x)
	}
	if !ApproxEqual(sum, 1, 1e-9) {
		t.Errorf("capped PMF sums to %g, want 1", sum)
	}
	// The capped mean must be <= the uncapped mean (mass pulled down).
	un := Binomial01{N: 40, P: 0.25, Cap: -1}
	if b.Mean() > un.Mean()+1e-12 {
		t.Errorf("capped mean %g exceeds uncapped %g", b.Mean(), un.Mean())
	}
	if b.PMF(9) != 0 {
		t.Error("mass above cap should be zero")
	}
}

func TestBinomial01DegenerateP(t *testing.T) {
	b0 := Binomial01{N: 10, P: 0, Cap: -1}
	if b0.PMF(0) != 1 || b0.PMF(1) != 0 {
		t.Error("P=0 should concentrate all mass at 0")
	}
	b1 := Binomial01{N: 10, P: 1, Cap: -1}
	if !ApproxEqual(b1.PMF(10), 1, 1e-12) {
		t.Error("P=1 should concentrate all mass at N")
	}
	b1c := Binomial01{N: 10, P: 1, Cap: 4}
	if !ApproxEqual(b1c.PMF(4), 1, 1e-12) {
		t.Error("P=1 with cap 4 should concentrate all mass at the cap")
	}
}

func TestBinomial01CapZero(t *testing.T) {
	b := Binomial01{N: 12, P: 0.5, Cap: 0}
	if !ApproxEqual(b.PMF(0), 1, 1e-12) {
		t.Errorf("cap 0 should place all mass at 0, got %g", b.PMF(0))
	}
	if b.Mean() != 0 {
		t.Errorf("cap 0 mean = %g, want 0", b.Mean())
	}
}

func TestBinomial01ExpectedValueMatchesMean(t *testing.T) {
	b := Binomial01{N: 30, P: 0.1, Cap: 6}
	id := b.ExpectedValue(func(x int) float64 { return float64(x) })
	if !ApproxEqual(id, b.Mean(), 1e-12) {
		t.Errorf("E[id] = %g, Mean = %g", id, b.Mean())
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {-3, 4, 0},
		{1000, 3, 334},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnZeroDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv(1,0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestApproxEqualNearZero(t *testing.T) {
	if !ApproxEqual(0, 1e-15, 0.01) {
		t.Error("values near zero should compare equal absolutely")
	}
	if ApproxEqual(1, 1.1, 0.01) {
		t.Error("10% apart should not pass 1% tolerance")
	}
}

func BenchmarkHypergeometricExpectedValue(b *testing.B) {
	h := Hypergeometric{N: 34000, K: 1, M: 12000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ExpectedValue(func(s int) float64 { return float64(s) })
	}
}

func BenchmarkLogBinomialLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LogBinomial(100000, 34567)
	}
}
