package analytic_test

import (
	"fmt"
	"testing"

	"github.com/resilience-models/dvf/internal/analytic"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/trace"
)

// allConfigs is every bundled Table IV geometry.
func allConfigs() []cache.Config {
	return append(cache.VerificationConfigs(), cache.ProfilingConfigs()...)
}

// affineSuite returns the verification-size affine kernels.
func affineSuite(t *testing.T) []kernels.Kernel {
	t.Helper()
	var out []kernels.Kernel
	for _, k := range kernels.VerificationSuite() {
		if _, ok := kernels.Affine(k); ok {
			out = append(out, k)
		}
	}
	if len(out) != 4 {
		t.Fatalf("expected 4 affine kernels (VM, CG, MG, FT), got %d", len(out))
	}
	return out
}

// simulate runs the kernel traced through the sequential simulator and
// returns the run info and per-structure misses.
func simulate(t *testing.T, k kernels.Kernel, cfg cache.Config) (*kernels.RunInfo, map[string]float64) {
	t.Helper()
	sim, err := cache.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	info, err := k.Run(trace.ConsumerFunc(func(r trace.Ref, owner int32) {
		sim.Access(r.Addr, r.Size, r.Write, cache.StructID(owner))
	}))
	if err != nil {
		t.Fatal(err)
	}
	misses := make(map[string]float64, len(info.Structures))
	for _, st := range info.Structures {
		misses[st.Name] = float64(sim.StructStats(cache.StructID(st.ID)).Misses)
	}
	return info, misses
}

// TestDifferentialWall is the analytic engine's validation wall: for
// every affine kernel x bundled cache geometry, every structure's
// analytic miss count must match the sequential simulator within the
// documented Tolerance (exactly, where the tolerance is zero).
func TestDifferentialWall(t *testing.T) {
	for _, k := range affineSuite(t) {
		k := k
		for _, cfg := range allConfigs() {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/%s", k.Name(), cfg.Name), func(t *testing.T) {
				t.Parallel()
				d, ok := kernels.Affine(k)
				if !ok {
					t.Fatalf("%s lost its descriptor", k.Name())
				}
				prof, err := analytic.Solve(d, cfg)
				if err != nil {
					t.Fatal(err)
				}
				info, sim := simulate(t, k, cfg)
				tol := analytic.Tolerance(k.Name(), cfg)
				for _, st := range info.Structures {
					model, err := prof.Misses(st.Name)
					if err != nil {
						t.Fatal(err)
					}
					simulated := sim[st.Name]
					lines := float64((st.Bytes + int64(cfg.LineSize) - 1) / int64(cfg.LineSize))
					bound := tol * simulated
					if b := tol * lines; b > bound {
						bound = b
					}
					diff := model - simulated
					if diff < 0 {
						diff = -diff
					}
					t.Logf("%-2s %-22s %-2s analytic %12.1f simulated %12.0f err %+7.3f%% (tol %g)",
						k.Name(), cfg.Name, st.Name, model, simulated, relPct(model, simulated), tol)
					if diff > bound {
						t.Errorf("%s/%s/%s: analytic %f vs simulated %f exceeds tolerance %g",
							k.Name(), cfg.Name, st.Name, model, simulated, tol)
					}
				}
			})
		}
	}
}

func relPct(model, sim float64) float64 {
	if sim == 0 {
		if model == 0 {
			return 0
		}
		return 100
	}
	return (model - sim) / sim * 100
}
