package analytic_test

import (
	"math"
	"testing"

	"github.com/resilience-models/dvf/internal/analytic"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/trace"
)

// FuzzAnalyticVsSimulator cross-checks the analytic engine against the
// sequential simulator over fuzzed kernel parameters and cache
// geometries. The bundled Table IV geometries are covered exhaustively by
// TestDifferentialWall under the documented tolerances; the fuzz target
// explores arbitrary geometries, where it asserts the engine's structural
// invariants instead of a fixed error bound:
//
//   - the solve succeeds, is finite, non-negative and deterministic;
//   - every structure's prediction is at most the simulator's access
//     count for that structure (a miss per line-event is the most any
//     model can charge; the compulsory floor is NOT the region footprint —
//     a strided stream on a small line size touches only some lines);
//   - in the guaranteed-fit regime — when even the worst-case set skew
//     cannot overflow associativity — both engines must agree exactly:
//     every reuse hits and only compulsory misses remain.
func FuzzAnalyticVsSimulator(f *testing.F) {
	f.Add(uint8(0), uint16(300), uint8(1), uint8(3), uint8(5), uint8(2)) // VM
	f.Add(uint8(1), uint16(40), uint8(2), uint8(2), uint8(6), uint8(1))  // CG
	f.Add(uint8(2), uint16(1), uint8(1), uint8(0), uint8(7), uint8(3))   // MG, direct-mapped
	f.Add(uint8(3), uint16(4), uint8(1), uint8(7), uint8(4), uint8(0))   // FT
	f.Fuzz(func(t *testing.T, kind uint8, sizeSel uint16, iterSel, assocSel, setSel, lineSel uint8) {
		var k kernels.Kernel
		switch kind % 4 {
		case 0:
			k = kernels.NewVM(16 + int(sizeSel%512))
		case 1:
			k = kernels.NewCG(8+int(sizeSel%57), 1+int(iterSel%3))
		case 2:
			k = kernels.NewMG(8<<(sizeSel%3), 1+int(iterSel%2))
		case 3:
			k = kernels.NewFT(4 << (sizeSel % 7))
		}
		cfg := cache.Config{
			Name:          "fuzz",
			Associativity: int(assocSel%8) + 1,
			Sets:          1 << (setSel % 8),
			LineSize:      1 << (3 + lineSel%4),
		}
		d, ok := kernels.Affine(k)
		if !ok {
			t.Fatalf("%s lost its affine pattern", k.Name())
		}
		prof, err := analytic.Solve(d, cfg)
		if err != nil {
			t.Fatalf("solve %s on %+v: %v", k.Name(), cfg, err)
		}
		again, err := analytic.Solve(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range prof.Structures {
			if again.Structures[i] != s {
				t.Fatalf("solve is not deterministic: %+v vs %+v", s, again.Structures[i])
			}
		}

		sim, err := cache.NewSimulator(cfg)
		if err != nil {
			t.Fatalf("geometry %+v rejected: %v", cfg, err)
		}
		info, err := k.Run(trace.ConsumerFunc(func(r trace.Ref, owner int32) {
			sim.Access(r.Addr, r.Size, r.Write, cache.StructID(owner))
		}))
		if err != nil {
			t.Fatal(err)
		}

		// Worst-case per-set occupancy across all regions: every region can
		// put at most floor(lines/Sets)+1 lines in any one set, whatever its
		// base alignment. Below associativity, eviction is impossible.
		worstPerSet := int64(0)
		for _, s := range prof.Structures {
			worstPerSet += s.Lines/int64(cfg.Sets) + 1
		}
		guaranteedFit := worstPerSet <= int64(cfg.Associativity)

		for _, st := range info.Structures {
			model, err := prof.Misses(st.Name)
			if err != nil {
				t.Fatal(err)
			}
			stats := sim.StructStats(cache.StructID(st.ID))
			if math.IsNaN(model) || math.IsInf(model, 0) || model < 0 {
				t.Fatalf("%s/%s: bad prediction %v", k.Name(), st.Name, model)
			}
			if accesses := float64(stats.Hits + stats.Misses); model > accesses+0.5 {
				t.Errorf("%s/%s on %+v: predicted %.2f misses above the %g line-events observed",
					k.Name(), st.Name, cfg, model, accesses)
			}
			if guaranteedFit {
				if simulated := float64(stats.Misses); model != simulated {
					t.Errorf("%s/%s on %+v: guaranteed-fit geometry (worst per-set %d <= assoc %d) but analytic %.2f != simulated %g",
						k.Name(), st.Name, cfg, worstPerSet, cfg.Associativity, model, simulated)
				}
			}
		}
	})
}
