package analytic

import (
	"fmt"
	"math/bits"

	"github.com/resilience-models/dvf/internal/cache"
)

// StructMisses is the solved result for one region: the number of
// main-memory accesses (cache miss line fills) the analytic model
// predicts the region induces on the solved geometry.
type StructMisses struct {
	Name   string
	Lines  int64   // compulsory line footprint on this geometry
	Misses float64 // predicted misses (fractional: set-mapping averages)
}

// Profile is the trace-free analog of replaying a kernel's trace through
// the cache simulator: per-structure main-memory access counts for one
// cache geometry. Misses here play the role of Stats.Misses — the N_ha
// the DVF aggregation consumes.
type Profile struct {
	Kernel     string
	Cache      string
	Structures []StructMisses
}

// Misses returns the predicted miss count for the named structure.
func (p *Profile) Misses(name string) (float64, error) {
	for _, s := range p.Structures {
		if s.Name == name {
			return s.Misses, nil
		}
	}
	return 0, fmt.Errorf("analytic: %s profile has no structure %q", p.Kernel, name)
}

// TotalMisses returns the sum over all structures.
func (p *Profile) TotalMisses() float64 {
	var t float64
	for _, s := range p.Structures {
		t += s.Misses
	}
	return t
}

// Solve runs the descriptor's phase program against one cache geometry
// and returns the predicted per-structure miss counts. It never touches a
// trace: cost is proportional to the number of loop nests (plus grid rows
// and permutation lines for the interval-counted phases), not to the
// number of memory references.
func Solve(d *Descriptor, cfg cache.Config) (*Profile, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &solver{
		d:    d,
		cfg:  cfg,
		tl:   newTimeline(),
		ridx: make(map[string]int, len(d.Regions)),
		miss: make([]float64, len(d.Regions)),
	}
	// Conflict-free geometries are exact by construction: when nothing can
	// ever be evicted, every reuse hits and only compulsory misses remain —
	// whereas the window model would leak a small spurious fraction. Two
	// sufficient conditions, both independent of the regions' (unknown)
	// base alignment:
	//
	//   - a single contiguous region of at most Sets lines puts every line
	//     in its own set;
	//   - whatever the alignment, a region of L lines can place at most
	//     floor(L/Sets)+1 lines in any one set, so when those worst cases
	//     summed over all regions still fit within the associativity,
	//     eviction is impossible.
	if len(d.Regions) == 1 && regionLines(d.Regions[0], cfg.LineSize) <= int64(cfg.Sets) {
		s.conflictFree = true
	}
	worstPerSet := int64(0)
	for _, r := range d.Regions {
		worstPerSet += regionLines(r, cfg.LineSize)/int64(cfg.Sets) + 1
	}
	if worstPerSet <= int64(cfg.Associativity) {
		s.conflictFree = true
	}
	for i, r := range d.Regions {
		s.ridx[r.Name] = i
	}
	s.phases(d.Phases)
	prof := &Profile{Kernel: d.Kernel, Cache: cfg.Name}
	for i, r := range d.Regions {
		prof.Structures = append(prof.Structures, StructMisses{
			Name:   r.Name,
			Lines:  regionLines(r, cfg.LineSize),
			Misses: s.miss[i],
		})
	}
	return prof, nil
}

type solver struct {
	d            *Descriptor
	cfg          cache.Config
	tl           *timeline
	ridx         map[string]int
	miss         []float64
	conflictFree bool
}

// fracGap and fracParts wrap the miss model with the conflict-free
// short-circuit (see Solve).
func (s *solver) fracGap(lines, events, ownLines int64) float64 {
	if s.conflictFree {
		return 0
	}
	return missFracGap(lines, events, ownLines, s.cfg)
}

func (s *solver) fracParts(parts []segPart, ownLines int64) float64 {
	if s.conflictFree {
		return 0
	}
	return missFracParts(parts, ownLines, s.cfg)
}

// key packs (region, sub-segment) into one timeline key. Sub 0 is the
// whole-region segment used by phase-granular solvers; interval-counted
// phases use 1+elemStart (grid rows) or 1+lineIndex (FFT lines), which
// stay well under the 2^40 sub-key space.
func (s *solver) key(ri int, sub int64) int64 { return int64(ri)<<40 | sub }

func (s *solver) phases(ps []Phase) {
	for _, p := range ps {
		switch p := p.(type) {
		case Stream:
			s.stream(p)
		case MatVec:
			s.matVec(p)
		case Smooth:
			s.smooth(p)
		case Restrict:
			s.restrict(p)
		case Prolong:
			s.prolong(p)
		case BitReverse:
			s.bitReverse(p)
		case Butterflies:
			s.butterflies(p)
		case Repeat:
			for i := 0; i < p.Count; i++ {
				s.phases(p.Body)
			}
		}
	}
}

// touch records a segment traversal and charges its misses: every line of
// the segment on the first-ever touch (compulsory), otherwise the
// set-pressure fraction of the gap the timeline reports — its distinct
// lines split over its segment events, with the segment's own footprint
// as the self-interference term (a line's true gap also spans the other
// lines of its own segment: the tail of the previous traversal plus the
// head of the current one).
func (s *solver) touch(ri int, sub, lines int64) {
	if lines <= 0 {
		return
	}
	d, e, first := s.tl.Touch(s.key(ri, sub), lines)
	if first {
		s.miss[ri] += float64(lines)
		return
	}
	s.miss[ri] += float64(lines) * s.fracGap(d, e, lines)
}

func (s *solver) region(name string) (int, Region) {
	ri := s.ridx[name]
	return ri, s.d.Regions[ri]
}

func (s *solver) stream(p Stream) {
	// Lockstep traversals: one whole-segment touch per distinct region, in
	// the body's first-access order. A second traversal of the same region
	// inside the phase (a load/store pair) rides on the first for free.
	seen := make(map[int]bool, len(p.Streams))
	for _, t := range p.Streams {
		ri, r := s.region(t.Region)
		if seen[ri] {
			continue
		}
		seen[ri] = true
		s.touch(ri, 0, distinctLines(t.Count, t.StrideElems, r.ElemSize, s.cfg.LineSize))
	}
}

func (s *solver) matVec(p MatVec) {
	vi, vr := s.region(p.Vec)
	mi, mr := s.region(p.Matrix)
	oi, or := s.region(p.Out)
	ls := s.cfg.LineSize
	vecLines := distinctLines(p.N, 1, vr.ElemSize, ls)
	rowLines := distinctLines(p.N, 1, mr.ElemSize, ls)
	outLines := distinctLines(p.N, 1, or.ElemSize, ls)
	// The vector's first inner traversal reuses whatever the previous
	// phase left (it interleaves with only the first matrix row), so it is
	// charged before the matrix event lands on the timeline.
	s.touch(vi, 0, vecLines)
	s.touch(mi, 0, regionLines(mr, ls))
	s.touch(oi, 0, outLines)
	// Remaining N-1 inner traversals, all at the same uniform gap: one
	// streamed matrix row plus one output line, against the vector's own
	// footprint as self-interference.
	inner := s.fracParts([]segPart{{lines: rowLines, count: 1}, {lines: 1, count: 1}}, vecLines)
	s.miss[vi] += float64(p.N-1) * float64(vecLines) * inner
	// The phase's true trailing accesses are the last matrix row, the
	// vector's last traversal, and the output's last store — not the
	// whole matrix. Reposition the vector and output events (already
	// charged above) so the next phase's gaps see that recency order.
	s.tl.Touch(s.key(vi, 0), vecLines)
	s.tl.Touch(s.key(oi, 0), outLines)
}

// touchRow is the grid-phase primitive: one (i, j) row of Dim contiguous
// k-elements, keyed by its element offset within the region.
func (s *solver) touchRow(ri int, r Region, startElem, dim int) {
	lines := distinctLines(dim, 1, r.ElemSize, s.cfg.LineSize)
	s.touch(ri, 1+int64(startElem), lines)
}

func (s *solver) smooth(p Smooth) {
	ri, r := s.region(p.Region)
	n := p.Dim
	row := func(i, j int) int { return p.OffsetElems + (i*n+j)*n }
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			s.touchRow(ri, r, row(i, j-1), n)
			s.touchRow(ri, r, row(i, j+1), n)
			s.touchRow(ri, r, row(i-1, j), n)
			s.touchRow(ri, r, row(i+1, j), n)
			s.touchRow(ri, r, row(i, j), n)
		}
	}
}

func (s *solver) restrict(p Restrict) {
	ri, r := s.region(p.Region)
	nf, nc := p.FineDim, p.CoarseDim
	rowF := func(i, j int) int { return p.FineOffset + (i*nf+j)*nf }
	rowC := func(i, j int) int { return p.CoarseOffs + (i*nc+j)*nc }
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			for di := 0; di < 2; di++ {
				for dj := 0; dj < 2; dj++ {
					s.touchRow(ri, r, rowF(2*i+di, 2*j+dj), nf)
				}
			}
			s.touchRow(ri, r, rowC(i, j), nc)
		}
	}
}

func (s *solver) prolong(p Prolong) {
	ri, r := s.region(p.Region)
	nf, nc := p.FineDim, p.CoarseDim
	rowF := func(i, j int) int { return p.FineOffset + (i*nf+j)*nf }
	rowC := func(i, j int) int { return p.CoarseOffs + (i*nc+j)*nc }
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			s.touchRow(ri, r, rowC(i, j), nc)
			for di := 0; di < 2; di++ {
				for dj := 0; dj < 2; dj++ {
					s.touchRow(ri, r, rowF(2*i+di, 2*j+dj), nf)
				}
			}
		}
	}
}

// touchLine is the permutation-phase primitive: one cache line, keyed by
// its line index within the region.
func (s *solver) touchLine(ri int, line int64) {
	d, e, first := s.tl.Touch(s.key(ri, 1+line), 1)
	if first {
		s.miss[ri]++
		return
	}
	s.miss[ri] += s.fracGap(d, e, 1)
}

func (s *solver) bitReverse(p BitReverse) {
	ri, r := s.region(p.Region)
	es, ls := int64(r.ElemSize), int64(s.cfg.LineSize)
	logN := bits.TrailingZeros(uint(p.N))
	visit := func(e int64) {
		for b := e * es / ls; b <= (e*es+es-1)/ls; b++ {
			s.touchLine(ri, b)
		}
	}
	// The swap's load/store pairs re-touch the same lines back to back;
	// one visit per element carries the whole swap's miss behaviour.
	for i := 0; i < p.N; i++ {
		j := int(bits.Reverse32(uint32(i)) >> (32 - logN))
		if i < j {
			visit(int64(i))
			visit(int64(j))
		}
	}
}

func (s *solver) butterflies(p Butterflies) {
	ri, r := s.region(p.Region)
	lines := distinctLines(p.N, 1, r.ElemSize, s.cfg.LineSize)
	passes := bits.TrailingZeros(uint(p.N)) // log2(N) passes, N >= 4 so >= 2
	emitPass := func() {
		for b := int64(0); b < lines; b++ {
			s.touchLine(ri, b)
		}
	}
	// First and last pass run through the interval counter so the
	// boundaries against neighboring phases (bit-reversal before, the next
	// round's bit-reversal after) carry real distances; the middle passes
	// are uniform — every line's touches in consecutive passes are
	// separated by exactly the rest of the array.
	emitPass()
	if mid := passes - 2; mid > 0 {
		// Consecutive-pass reuse: a line's gap is exactly one traversal of
		// its own array — pure self-interference.
		s.miss[ri] += float64(mid) * float64(lines) * s.fracParts(nil, lines)
	}
	if passes >= 2 {
		emitPass()
	}
}
