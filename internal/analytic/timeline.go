package analytic

// timeline is a weighted distinct-interval counter over segment-touch
// events: each event says "all W lines of segment K were just touched",
// and Touch returns how many distinct lines of *other* segments were
// touched since K's previous event — the phase-granular stack distance —
// together with how many segment events contributed them, which the miss
// model needs to reconstruct the gap's composition.
//
// It is the classic Bennett–Kruskal reuse-distance structure: events get
// increasing positions, a Fenwick tree holds each segment's weight at its
// most recent position only, and the distance is the weight sum over the
// open interval since the segment's last event. A parallel tree counts
// live events the same way. Touch is O(log events).
type timeline struct {
	tree    []int64       // Fenwick tree of live weights, 1-based positions
	etree   []int64       // Fenwick tree of live event markers (1 each)
	weights []int64       // raw weight per position (for regrowth)
	last    map[int64]int // segment key -> most recent event position
	n       int           // events so far
}

func newTimeline() *timeline {
	return &timeline{
		tree:    make([]int64, 1024+1),
		etree:   make([]int64, 1024+1),
		weights: make([]int64, 0, 1024),
		last:    make(map[int64]int, 256),
	}
}

// Touch records that segment key was touched with weight lines and
// returns the distinct-line distance since its previous touch and the
// number of distinct segments it is made of. first is true when the
// segment was never touched before (compulsory territory — dist is the
// full footprint touched so far and should be ignored).
func (t *timeline) Touch(key int64, weight int64) (dist, events int64, first bool) {
	prev, seen := t.last[key]
	if seen {
		// Sums of live entries in (prev, n]: every segment touched since,
		// counted once at its latest position; key itself sits at prev.
		dist = t.sum(t.tree, t.n) - t.sum(t.tree, prev)
		events = t.sum(t.etree, t.n) - t.sum(t.etree, prev)
		t.add(t.tree, prev, -t.weights[prev-1])
		t.add(t.etree, prev, -1)
		t.weights[prev-1] = 0
	} else {
		dist = t.sum(t.tree, t.n)
		events = t.sum(t.etree, t.n)
	}
	t.n++
	t.weights = append(t.weights, weight)
	if t.n >= len(t.tree) {
		t.grow()
	}
	t.add(t.tree, t.n, weight)
	t.add(t.etree, t.n, 1)
	t.last[key] = t.n
	return dist, events, !seen
}

// grow doubles the trees and re-inserts the live entries.
func (t *timeline) grow() {
	t.tree = make([]int64, 2*len(t.tree))
	t.etree = make([]int64, len(t.tree))
	for pos, w := range t.weights {
		if w != 0 {
			t.add(t.tree, pos+1, w)
			t.add(t.etree, pos+1, 1)
		}
	}
}

func (t *timeline) add(tree []int64, pos int, delta int64) {
	for ; pos < len(tree); pos += pos & -pos {
		tree[pos] += delta
	}
}

// sum returns the tree's total over positions [1, pos].
func (t *timeline) sum(tree []int64, pos int) int64 {
	var s int64
	for ; pos > 0; pos -= pos & -pos {
		s += tree[pos]
	}
	return s
}
