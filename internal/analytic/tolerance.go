package analytic

import "github.com/resilience-models/dvf/internal/cache"

// Tolerance returns the documented relative error bound of the analytic
// engine against the sequential cache simulator for one kernel on one
// cache geometry: |analytic - simulated| <= tol * max(simulated, lines)
// must hold for every structure's miss count (and hence for the DVF,
// which is linear in the miss counts). The differential wall in this
// package, the fuzz targets and the live differential in
// dvf-verify -engine analytic all assert exactly this bound.
//
// The bounds are zero wherever the solve is exact and small where the
// phase-granular interval counting approximates (see the package comment
// and the table in DESIGN.md); they are measured against the simulator
// and pinned with margin, so a drift in either side turns CI red.
func Tolerance(kernel string, cfg cache.Config) float64 {
	t, ok := tolerances[kernel]
	if !ok {
		return 0
	}
	if f, ok := t[cfg.Name]; ok {
		return f
	}
	return t[""]
}

// tolerances maps kernel -> cache name -> bound; "" is the kernel's
// default. Values are pinned from the measured differential (see
// solver_test.go) with headroom, and stay well under the paper's own
// <= 15% model-error envelope for Figure 4. Both sides are fully
// deterministic, so any widening of these errors is a code change and
// should turn the wall red.
var tolerances = map[string]map[string]float64{
	// VM is a pure streaming kernel: exact on every geometry.
	"VM": {"": 0},
	"FT": {
		// Exact wherever the array is conflict-free or fully evicted
		// between reuses; the two leaking cells sit at the set-conflict
		// boundary, where the window model slightly underestimates the
		// bit-reversal permutation's self-conflicts (measured -0.6% on
		// Small, -1.9% on 16KB).
		"":                     0,
		"Small (Verification)": 0.015,
		"16KB (Profiling)":     0.04,
	},
	"MG": {
		// Row-granular interval counting treats the smoother's
		// neighbor-row gaps as independently placed windows (measured
		// within +-1.1% off the boundary). On the 16KB geometry a
		// smoother working set of ~92 rows lands exactly on capacity and
		// the independence assumption overestimates the leak (+13.9%).
		"":                 0.02,
		"16KB (Profiling)": 0.25,
	},
	"CG": {
		// Exact except where the direction vector sits on a capacity
		// boundary: Small leaks -3.1% (window-alignment correlation the
		// Bernoulli model cannot see), and 16KB +39% on a structure whose
		// misses are 0.1% of the kernel total — the A matrix, which
		// dominates the DVF, stays exact everywhere.
		"":                 0.05,
		"16KB (Profiling)": 0.6,
	},
}
