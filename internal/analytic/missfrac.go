package analytic

import (
	"math"

	"github.com/resilience-models/dvf/internal/cache"
)

// The set-pressure miss model. A reused line survives in a CA-way LRU set
// iff fewer than CA distinct intervening lines mapped to its set. The
// kernels' interference consists of contiguous segments (streamed rows,
// whole vectors, grid rows), and a contiguous segment of len lines deals
// its lines across the NA sets as a base of floor(len/NA) per set plus a
// one-lap window of (len mod NA) consecutive sets that receive one more.
// The window's position rotates with the segment's start address, which
// the phase solvers do not track — so each window is modeled as an
// independent Bernoulli(rem/NA) indicator at the reused line's set, and
// the set pressure K becomes
//
//	K = sum(floors) + PoissonBinomial(windows) + own-segment term
//
// with missFraction = P(K >= CA). The own-segment term covers the reused
// line's own companions: when a segment re-traverses itself, the target
// set already holds floor(own/NA) own lines beyond the reused line (plus
// a window), which intervene between the line's consecutive touches.
//
// Far from capacity the floors alone decide (every reuse hits or every
// reuse misses — exact); inside the boundary band this reproduces the
// simulator's gradual leak where a scalar distance-over-capacity
// threshold is off by whole structures (CG's direction vector on the
// Small cache sits exactly there: three ~2-lap segments against a 4-way
// set leak ~1.4%, not ~90%).

// segPart describes `count` intervening segments of `lines` lines each.
type segPart struct {
	lines int64
	count int64
}

// missFracParts returns P(K >= CA) for a reuse whose gap consists of the
// given segment parts, re-traversed as part of a segment of ownLines
// lines (0 for a point access).
func missFracParts(parts []segPart, ownLines int64, cfg cache.Config) float64 {
	na := int64(cfg.Sets)
	ca := int64(cfg.Associativity)
	base := int64(0)
	// pmf[k] is P(window sum == k), truncated at need; need tracks the
	// remaining window hits required once floors are subtracted.
	var pmf [64]float64
	pmf[0] = 1
	top := 0
	addWindows := func(trials int64, w float64) {
		if trials <= 0 || w <= 0 {
			return
		}
		// Binomial(trials, w) pmf up to the truncation point, folded into
		// the running distribution. Beyond ca hits the verdict cannot
		// change, so everything is clamped there.
		var bin [64]float64
		limit := int(ca)
		if limit >= len(bin)-1 {
			limit = len(bin) - 2
		}
		bin[0] = math.Pow(1-w, float64(trials))
		tail := 1 - bin[0]
		for k := 0; k < limit; k++ {
			bin[k+1] = bin[k] * float64(trials-int64(k)) / float64(k+1) * w / (1 - w)
			tail -= bin[k+1]
		}
		if tail < 0 {
			tail = 0
		}
		bin[limit+1] = tail // probability mass of "limit+1 or more"
		var out [64]float64
		for a := 0; a <= top; a++ {
			if pmf[a] == 0 {
				continue
			}
			for b := 0; b <= limit+1; b++ {
				c := a + b
				if c > limit+1 {
					c = limit + 1
				}
				out[c] += pmf[a] * bin[b]
			}
		}
		pmf = out
		top = limit + 1
	}
	for _, p := range parts {
		if p.count <= 0 || p.lines <= 0 {
			continue
		}
		base += p.count * (p.lines / na)
		addWindows(p.count, float64(p.lines%na)/float64(na))
	}
	if ownLines > na {
		base += ownLines/na - 1
		addWindows(1, float64(ownLines%na)/float64(na))
	}
	need := ca - base
	if need <= 0 {
		return 1
	}
	if int(need) > top {
		return 0
	}
	hit := 0.0
	for k := 0; k < int(need); k++ {
		hit += pmf[k]
	}
	frac := 1 - hit
	if frac < 0 {
		return 0
	}
	return frac
}

// missFracGap models a gap known only as (lines, events) timeline totals:
// the events are assumed equal-length segments, with the division slack
// folded into a few one-line-longer parts.
func missFracGap(lines, events, ownLines int64, cfg cache.Config) float64 {
	if events <= 0 || lines <= 0 {
		if ownLines > int64(cfg.Sets)*int64(cfg.Associativity) {
			return missFracParts(nil, ownLines, cfg)
		}
		return 0
	}
	avg := lines / events
	rem := lines % events
	return missFracParts([]segPart{
		{lines: avg + 1, count: rem},
		{lines: avg, count: events - rem},
	}, ownLines, cfg)
}

// distinctLines returns the number of distinct cache lines touched by a
// region-base-aligned strided traversal of count elements of elemSize
// bytes at a stride of strideElems elements. Element offsets are
// elemSize-aligned multiples and elemSize is 8 or 16 against line sizes
// >= 8, so an element never straddles more lines than its own span.
func distinctLines(count, strideElems, elemSize, lineSize int) int64 {
	if count <= 0 {
		return 0
	}
	step := int64(strideElems) * int64(elemSize)
	ls := int64(lineSize)
	if step < ls {
		// Dense or overlapping: the footprint is one contiguous span.
		span := int64(count-1)*step + int64(elemSize)
		return ceilDiv(span, ls)
	}
	// Sparse: elements land in disjoint line groups, one per element.
	return int64(count) * ceilDiv(int64(elemSize), ls)
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// regionLines returns the total line footprint of a region.
func regionLines(r Region, lineSize int) int64 {
	return ceilDiv(r.Bytes, int64(lineSize))
}
