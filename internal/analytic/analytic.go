// Package analytic is the trace-free DVF engine: it derives per-structure
// main-memory access counts for the affine kernels (VM, CG, MG, FT)
// symbolically, from the loop structure alone, without generating or
// replaying a memory-reference trace.
//
// A kernel whose access stream is affine exports a Descriptor — an ordered
// program of loop-nest phases over its data regions (the same information
// the pseudocode templates in internal/kernels encode, lifted to a small
// IR). Solve walks that program once per cache geometry and computes, per
// phase, the reuse distance of every line the phase touches:
//
//   - closed form where the loop nest makes distances uniform (streamed
//     traversals, the dense mat-vec inner loop, FFT butterfly passes), and
//   - per-loop-nest interval counting everywhere else (the multi-grid
//     V-cycle at row granularity, the FFT bit-reversal at line
//     granularity), via a Fenwick-tree distinct-interval counter over
//     segment-touch events.
//
// Stack distances become miss counts through a set-associativity
// correction (see missFraction) instead of the sharp fully-associative
// capacity threshold, and the per-structure miss counts are exactly the
// N_ha inputs the DVF aggregation in internal/dvf consumes. The whole
// solve costs microseconds to low milliseconds, versus the nanosecond-
// per-reference cost of batched replay — orders of magnitude cheaper on
// the larger kernels (CG's verification trace alone is ~5M references).
//
// # Accuracy contract
//
// The solver is exact wherever every reuse distance is far from the cache
// capacity on both sides (everything hits or everything misses, which is
// where all Table IV configurations put the bundled kernels for most
// structures). Near capacity the set-associativity correction models the
// simulator's gradual leak, but phase-granular interval counting sums
// intervening footprints instead of intersecting them, so a small
// documented error remains; Tolerance returns the asserted per-kernel
// bound, and the differential wall in this package plus the live
// differential in dvf-verify -engine analytic enforce it against the
// sequential simulator for every affine kernel x bundled cache config.
package analytic

import "fmt"

// Region is one major data region of a descriptor (a trace.Registry
// allocation in the traced kernel). Region bases are 4096-aligned by the
// registry, so every region starts at set 0 of every Table IV geometry —
// the property the round-robin set-mapping correction relies on.
type Region struct {
	Name     string // structure name, e.g. "A", "p", "R"
	Bytes    int64  // footprint in bytes
	ElemSize int    // element width in bytes (8 for float64, 16 for complex128)
}

// Descriptor is the affine access program of one kernel: its data regions
// and the ordered phases of its modeled computation. Kernels whose loop
// bounds are static (fixed iteration counts, no data-dependent breaks)
// can export one; see kernels.PatternSource.
type Descriptor struct {
	Kernel  string
	Regions []Region
	Phases  []Phase
}

// Region returns the named region, or an error naming the kernel.
func (d *Descriptor) Region(name string) (Region, error) {
	for _, r := range d.Regions {
		if r.Name == name {
			return r, nil
		}
	}
	return Region{}, fmt.Errorf("analytic: %s has no region %q", d.Kernel, name)
}

// Validate reports structural errors in the descriptor.
func (d *Descriptor) Validate() error {
	if d.Kernel == "" {
		return fmt.Errorf("analytic: descriptor must name its kernel")
	}
	if len(d.Regions) == 0 {
		return fmt.Errorf("analytic: %s: descriptor has no regions", d.Kernel)
	}
	seen := make(map[string]bool, len(d.Regions))
	for _, r := range d.Regions {
		if r.Name == "" || r.Bytes <= 0 || r.ElemSize <= 0 {
			return fmt.Errorf("analytic: %s: malformed region %+v", d.Kernel, r)
		}
		if seen[r.Name] {
			return fmt.Errorf("analytic: %s: duplicate region %q", d.Kernel, r.Name)
		}
		seen[r.Name] = true
	}
	return validatePhases(d, d.Phases)
}

func validatePhases(d *Descriptor, phases []Phase) error {
	for _, p := range phases {
		if err := p.validate(d); err != nil {
			return err
		}
	}
	return nil
}

// Phase is one loop nest of a descriptor program. The concrete phase
// kinds below are the solver's vocabulary; each knows how to validate
// itself against the descriptor it appears in.
type Phase interface {
	validate(d *Descriptor) error
}

// Traversal is one strided stream within a Stream phase.
type Traversal struct {
	Region      string // region the stream walks
	StartElem   int    // first element index
	StrideElems int    // element stride (>= 1)
	Count       int    // trip count
}

// Stream is a loop whose body touches several regions in lockstep — the
// element-interleaved strided traversals of VM's triple stream and CG's
// vector phases (dot, axpy, xpay, rho). Streams lists the traversals in
// the body's first-access order.
type Stream struct {
	Streams []Traversal
}

func (p Stream) validate(d *Descriptor) error {
	if len(p.Streams) == 0 {
		return fmt.Errorf("analytic: %s: empty Stream phase", d.Kernel)
	}
	for _, t := range p.Streams {
		if _, err := d.Region(t.Region); err != nil {
			return err
		}
		if t.Count <= 0 || t.StrideElems <= 0 || t.StartElem < 0 {
			return fmt.Errorf("analytic: %s: malformed traversal %+v", d.Kernel, t)
		}
	}
	return nil
}

// MatVec is the dense matrix-vector product loop nest Out = Matrix * Vec:
// per row, the row of Matrix is streamed, Vec is fully re-traversed and
// one element of Out is stored — the loop that dominates CG.
type MatVec struct {
	Matrix, Vec, Out string
	N                int // square dimension
}

func (p MatVec) validate(d *Descriptor) error {
	for _, name := range []string{p.Matrix, p.Vec, p.Out} {
		if _, err := d.Region(name); err != nil {
			return err
		}
	}
	if p.N <= 1 {
		return fmt.Errorf("analytic: %s: MatVec n=%d must exceed 1", d.Kernel, p.N)
	}
	return nil
}

// Smooth is one sweep of the Algorithm 3 four-neighbor smoother over one
// grid level living inside Region at OffsetElems, of dimension Dim per
// axis. The solver counts it at row granularity (a row = the Dim
// contiguous k-elements of one (i, j) cell).
type Smooth struct {
	Region      string
	Dim         int // grid dimension per axis
	OffsetElems int // element offset of the level within the region
}

func (p Smooth) validate(d *Descriptor) error { return validateGrid(d, p.Region, p.Dim, p.OffsetElems) }

// Restrict is the fine-to-coarse injection between two adjacent grid
// levels of the same region (each coarse cell averages its 2x2x2 fine
// children).
type Restrict struct {
	Region                 string
	FineDim, CoarseDim     int
	FineOffset, CoarseOffs int // element offsets of the two levels
}

func (p Restrict) validate(d *Descriptor) error {
	if p.CoarseDim*2 != p.FineDim {
		return fmt.Errorf("analytic: %s: Restrict dims %d -> %d not a 2x coarsening",
			d.Kernel, p.FineDim, p.CoarseDim)
	}
	if err := validateGrid(d, p.Region, p.FineDim, p.FineOffset); err != nil {
		return err
	}
	return validateGrid(d, p.Region, p.CoarseDim, p.CoarseOffs)
}

// Prolong is the coarse-to-fine interpolation between two adjacent grid
// levels of the same region (each coarse value is added onto its eight
// children, read-modify-write).
type Prolong struct {
	Region                 string
	FineDim, CoarseDim     int
	FineOffset, CoarseOffs int
}

func (p Prolong) validate(d *Descriptor) error {
	if p.CoarseDim*2 != p.FineDim {
		return fmt.Errorf("analytic: %s: Prolong dims %d -> %d not a 2x refinement",
			d.Kernel, p.FineDim, p.CoarseDim)
	}
	if err := validateGrid(d, p.Region, p.FineDim, p.FineOffset); err != nil {
		return err
	}
	return validateGrid(d, p.Region, p.CoarseDim, p.CoarseOffs)
}

func validateGrid(d *Descriptor, region string, dim, offset int) error {
	r, err := d.Region(region)
	if err != nil {
		return err
	}
	if dim < 2 || offset < 0 {
		return fmt.Errorf("analytic: %s: malformed grid level dim=%d offset=%d", d.Kernel, dim, offset)
	}
	need := int64(offset+dim*dim*dim) * int64(r.ElemSize)
	if need > r.Bytes {
		return fmt.Errorf("analytic: %s: grid level dim=%d offset=%d overruns region %s",
			d.Kernel, dim, offset, region)
	}
	return nil
}

// BitReverse is the FFT bit-reversal permutation over Region (N a power
// of two): for every pair i < j with j = rev(i), elements i and j are
// loaded and stored. Counted at line granularity by interval counting —
// the visit order is a bit-reversed shuffle, not a stream.
type BitReverse struct {
	Region string
	N      int
}

func (p BitReverse) validate(d *Descriptor) error {
	if _, err := d.Region(p.Region); err != nil {
		return err
	}
	if p.N < 4 || p.N&(p.N-1) != 0 {
		return fmt.Errorf("analytic: %s: BitReverse n=%d must be a power of two >= 4", d.Kernel, p.N)
	}
	return nil
}

// Butterflies is the log2(N) radix-2 butterfly passes of the FFT: each
// pass is one full traversal of Region touching every line once (the a/b
// legs of each butterfly partition the array), with the whole rest of the
// array intervening between a line's touches in consecutive passes.
type Butterflies struct {
	Region string
	N      int
}

func (p Butterflies) validate(d *Descriptor) error {
	if _, err := d.Region(p.Region); err != nil {
		return err
	}
	if p.N < 4 || p.N&(p.N-1) != 0 {
		return fmt.Errorf("analytic: %s: Butterflies n=%d must be a power of two >= 4", d.Kernel, p.N)
	}
	return nil
}

// Repeat runs Body Count times back to back — the outer iteration loop of
// CG, the V-cycle count of MG, the round count of FT. The solver unrolls
// it; bodies are short (a handful of phases), so even CG's 10 iterations
// stay a few hundred phase solves.
type Repeat struct {
	Count int
	Body  []Phase
}

func (p Repeat) validate(d *Descriptor) error {
	if p.Count <= 0 {
		return fmt.Errorf("analytic: %s: Repeat count %d must be positive", d.Kernel, p.Count)
	}
	return validatePhases(d, p.Body)
}
