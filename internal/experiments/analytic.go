package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/resilience-models/dvf/internal/analytic"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/trace"
	"github.com/resilience-models/dvf/internal/tracez"
)

// The analytic engine (engine=analytic) derives a kernel's per-structure
// main-memory access counts symbolically from its affine loop structure
// (internal/analytic) instead of replaying a reference trace through the
// cache simulator. This file wires it into the figure drivers:
//
//   - RunAnalyticDiff is the engine's live differential — analytic vs
//     the sequential simulator, checked against the documented tolerance
//     contract (dvf-verify -engine analytic, make analytic-smoke);
//   - RunFig4Analytic regenerates Figure 4's affine subset with the
//     simulated column produced by the analytic engine;
//   - ProfileKernelAnalytic / RunFig5Analytic profile DVF with analytic
//     N_ha (Figure 5's affine subset);
//   - RunFig6Analytic replays the CG-vs-PCG use case with the CG side
//     solved analytically (PCG's convergence-bounded recurrence has no
//     static access pattern and stays on the CGPMAC estimators).

// AnalyticRow is one structure of the analytic-vs-simulated differential:
// the trace-free analytic miss count against the sequential simulator's,
// with the documented tolerance the pair must satisfy.
type AnalyticRow struct {
	Kernel    string
	Cache     string
	Structure string
	Analytic  float64
	Simulated float64
	Lines     int64   // compulsory line footprint on this geometry
	Tolerance float64 // documented bound (analytic.Tolerance)
}

// ErrorPct returns the signed relative error of the analytic engine in
// percent.
func (r AnalyticRow) ErrorPct() float64 {
	if r.Simulated == 0 {
		if r.Analytic == 0 {
			return 0
		}
		return 100
	}
	return (r.Analytic - r.Simulated) / r.Simulated * 100
}

// Within reports whether the row satisfies the accuracy contract:
// |analytic - simulated| <= tolerance * max(simulated, lines).
func (r AnalyticRow) Within() bool {
	bound := r.Tolerance * r.Simulated
	if b := r.Tolerance * float64(r.Lines); b > bound {
		bound = b
	}
	diff := r.Analytic - r.Simulated
	if diff < 0 {
		diff = -diff
	}
	return diff <= bound
}

// AnalyticCell records the per-(kernel, cache) cost asymmetry the engine
// exists for: the analytic solve against the traced simulator replay that
// verified it.
type AnalyticCell struct {
	Kernel   string
	Cache    string
	Refs     int64 // references the simulator consumed
	SolveNs  int64 // analytic solve wall time
	ReplayNs int64 // traced sequential simulation wall time
}

// AnalyticResult is the full differential sweep.
type AnalyticResult struct {
	Rows  []AnalyticRow
	Cells []AnalyticCell
}

// Check returns an error describing every row that violates the accuracy
// contract, or nil when the whole sweep is within tolerance.
func (res *AnalyticResult) Check() error {
	var bad []string
	for _, r := range res.Rows {
		if !r.Within() {
			bad = append(bad, fmt.Sprintf("%s/%s/%s: analytic %.3f vs simulated %.0f (err %+.2f%%, tol %g)",
				r.Kernel, r.Cache, r.Structure, r.Analytic, r.Simulated, r.ErrorPct(), r.Tolerance))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("experiments: analytic engine out of tolerance:\n  %s",
			strings.Join(bad, "\n  "))
	}
	return nil
}

// Render formats the live differential, one row per structure plus a
// per-cell cost line.
func (res *AnalyticResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine=analytic differential (trace-free solve vs sequential simulator)\n")
	fmt.Fprintf(&b, "%-4s %-22s %-6s %14s %14s %9s %7s %4s\n",
		"kern", "cache", "struct", "analytic", "simulated", "error", "tol", "ok")
	for _, r := range res.Rows {
		ok := "ok"
		if !r.Within() {
			ok = "FAIL"
		}
		fmt.Fprintf(&b, "%-4s %-22s %-6s %14.1f %14.0f %+8.3f%% %7g %4s\n",
			r.Kernel, r.Cache, r.Structure, r.Analytic, r.Simulated, r.ErrorPct(), r.Tolerance, ok)
	}
	for _, c := range res.Cells {
		speedup := 0.0
		if c.SolveNs > 0 {
			speedup = float64(c.ReplayNs) / float64(c.SolveNs)
		}
		fmt.Fprintf(&b, "cost %-4s %-22s solve %10s   replay %12s (%d refs)   %8.0fx\n",
			c.Kernel, c.Cache,
			time.Duration(c.SolveNs).Round(time.Microsecond),
			time.Duration(c.ReplayNs).Round(time.Microsecond),
			c.Refs, speedup)
	}
	return b.String()
}

// AffineVerificationSuite returns the verification-suite kernels the
// analytic engine applies to (the four affine Table II kernels).
func AffineVerificationSuite() []kernels.Kernel {
	return affineSubset(kernels.VerificationSuite())
}

func affineSubset(suite []kernels.Kernel) []kernels.Kernel {
	var out []kernels.Kernel
	for _, k := range suite {
		if _, ok := kernels.Affine(k); ok {
			out = append(out, k)
		}
	}
	return out
}

// VerifyKernelAnalytic runs the analytic engine and the sequential
// simulator for one (kernel, cache) cell and returns the per-structure
// differential rows plus the cell's cost record.
func VerifyKernelAnalytic(k kernels.Kernel, cfg cache.Config) ([]AnalyticRow, AnalyticCell, error) {
	d, ok := kernels.Affine(k)
	if !ok {
		return nil, AnalyticCell{}, fmt.Errorf(
			"experiments: %s has no affine access pattern (engine=analytic needs one)", k.Name())
	}
	//dvf:allow determinism the solve/replay wall times are cost telemetry for the Render footer only; WriteCSV and the golden files exclude them, so no deterministic output depends on the clock
	t0 := time.Now()
	prof, err := analytic.Solve(d, cfg)
	solveNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, AnalyticCell{}, err
	}
	sim, err := cache.NewSimulator(cfg)
	if err != nil {
		return nil, AnalyticCell{}, err
	}
	//dvf:allow determinism same cost-telemetry argument as the solve timer above
	t0 = time.Now()
	info, err := k.Run(trace.ConsumerFunc(func(r trace.Ref, owner int32) {
		sim.Access(r.Addr, r.Size, r.Write, cache.StructID(owner))
	}))
	replayNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, AnalyticCell{}, fmt.Errorf("experiments: running %s: %w", k.Name(), err)
	}
	tol := analytic.Tolerance(k.Name(), cfg)
	rows := make([]AnalyticRow, 0, len(info.Structures))
	for _, st := range info.Structures {
		model, err := prof.Misses(st.Name)
		if err != nil {
			return nil, AnalyticCell{}, err
		}
		rows = append(rows, AnalyticRow{
			Kernel:    k.Name(),
			Cache:     cfg.Name,
			Structure: st.Name,
			Analytic:  model,
			Simulated: float64(sim.StructStats(cache.StructID(st.ID)).Misses),
			Lines:     (st.Bytes + int64(cfg.LineSize) - 1) / int64(cfg.LineSize),
			Tolerance: tol,
		})
	}
	cell := AnalyticCell{
		Kernel: k.Name(), Cache: cfg.Name,
		Refs: info.Refs, SolveNs: solveNs, ReplayNs: replayNs,
	}
	return rows, cell, nil
}

// RunAnalyticDiff runs the analytic-vs-simulated differential for every
// affine verification kernel on the given caches (nil = the Table IV
// verification pair). The cells are independent and fan out like the
// other figure drivers; rows keep cache-major, Table II order.
func RunAnalyticDiff(configs []cache.Config, workers int, ms metrics.Sink, tz tracez.Recorder) (*AnalyticResult, error) {
	if len(configs) == 0 {
		configs = cache.VerificationConfigs()
	}
	type cellIn struct {
		cfg cache.Config
		k   kernels.Kernel
	}
	var cells []cellIn
	for _, cfg := range configs {
		for _, k := range affineSubset(kernels.VerificationSuite()) {
			cells = append(cells, cellIn{cfg: cfg, k: k})
		}
	}
	rows := make([][]AnalyticRow, len(cells))
	costs := make([]AnalyticCell, len(cells))
	err := ParallelObs(len(cells), workers, ms, tz, func(i int) error {
		var err error
		rows[i], costs[i], err = VerifyKernelAnalytic(cells[i].k, cells[i].cfg)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &AnalyticResult{Cells: costs}
	for i := range cells {
		res.Rows = append(res.Rows, rows[i]...)
	}
	return res, nil
}

// RunFig4Analytic regenerates the affine subset of Figure 4 with the
// simulated column produced by the analytic engine instead of a traced
// replay: Model stays the CGPMAC estimate, Simulated becomes the
// trace-free analytic miss count. Within the engine's tolerance contract
// the rows match the replay-backed figure.
func RunFig4Analytic() (*Fig4Result, error) {
	res := &Fig4Result{}
	for _, cfg := range cache.VerificationConfigs() {
		for _, k := range affineSubset(kernels.VerificationSuite()) {
			rows, err := verifyKernelFig4Analytic(k, cfg)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, rows...)
		}
	}
	return res, nil
}

// verifyKernelFig4Analytic builds Figure 4 rows for one cell with the
// analytic engine on the simulated side.
func verifyKernelFig4Analytic(k kernels.Kernel, cfg cache.Config) ([]Fig4Row, error) {
	d, ok := kernels.Affine(k)
	if !ok {
		return nil, fmt.Errorf(
			"experiments: %s has no affine access pattern (engine=analytic needs one)", k.Name())
	}
	prof, err := analytic.Solve(d, cfg)
	if err != nil {
		return nil, err
	}
	info, err := k.Run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", k.Name(), err)
	}
	specs, err := k.Models(info)
	if err != nil {
		return nil, fmt.Errorf("experiments: modeling %s: %w", k.Name(), err)
	}
	rows := make([]Fig4Row, 0, len(specs))
	for _, spec := range specs {
		model, err := spec.Estimator.MemoryAccesses(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", k.Name(), spec.Structure, err)
		}
		simulated, err := prof.Misses(spec.Structure)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{
			Kernel:    k.Name(),
			Cache:     cfg.Name,
			Structure: spec.Structure,
			Model:     model,
			Simulated: simulated,
		})
	}
	return rows, nil
}

// ProfileKernelAnalytic is ProfileKernel with the per-structure N_ha
// produced by the analytic engine instead of the CGPMAC estimators: the
// kernel runs once untraced (workload counts for the cost model), the
// symbolic solve provides the miss counts, and Equation 1 does the rest.
func ProfileKernelAnalytic(k kernels.Kernel, cfg cache.Config, rate dvf.FIT, cost dvf.CostModel) (*dvf.Application, error) {
	d, ok := kernels.Affine(k)
	if !ok {
		return nil, fmt.Errorf(
			"experiments: %s has no affine access pattern (engine=analytic needs one)", k.Name())
	}
	info, err := k.Run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", k.Name(), err)
	}
	return analyticApplication(k.Name(), info, d, cfg, rate, cost)
}

// analyticApplication aggregates an analytic solve into a DVF report,
// using a prior (untraced) run's workload counts for the cost model.
func analyticApplication(name string, info *kernels.RunInfo, d *analytic.Descriptor, cfg cache.Config, rate dvf.FIT, cost dvf.CostModel) (*dvf.Application, error) {
	prof, err := analytic.Solve(d, cfg)
	if err != nil {
		return nil, err
	}
	var (
		names []string
		sizes []int64
		nhas  []float64
		total float64
	)
	for _, st := range info.Structures {
		nha, err := prof.Misses(st.Name)
		if err != nil {
			return nil, err
		}
		names = append(names, st.Name)
		sizes = append(sizes, st.Bytes)
		nhas = append(nhas, nha)
		total += nha
	}
	hours := cost.ExecHours(info.Refs, total, float64(info.Flops))
	return dvf.NewApplicationObs(name, rate, hours, names, sizes, nhas, nil)
}

// RunFig5Analytic regenerates the affine subset of Figure 5 with analytic
// N_ha: the four affine kernels at the Table VI input sizes across the
// four profiling caches.
func RunFig5Analytic() (*Fig5Result, error) {
	res := &Fig5Result{Rate: dvf.FITNoECC}
	for _, k := range affineSubset(kernels.ProfilingSuite()) {
		info, err := k.Run(nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: running %s: %w", k.Name(), err)
		}
		d, _ := kernels.Affine(k)
		for _, cfg := range cache.ProfilingConfigs() {
			app, err := analyticApplication(k.Name(), info, d, cfg, res.Rate, dvf.DefaultCostModel)
			if err != nil {
				return nil, err
			}
			for _, s := range app.Structures {
				res.Cells = append(res.Cells, Fig5Cell{
					Kernel: k.Name(), Cache: cfg.Name, Structure: s.Name, DVF: s.DVF,
				})
			}
			res.Cells = append(res.Cells, Fig5Cell{
				Kernel: k.Name(), Cache: cfg.Name, Structure: "DVF_a", DVF: app.Total(),
			})
		}
	}
	return res, nil
}

// RunFig6Analytic replays the Figure 6 use case with the CG side solved
// by the analytic engine: each problem size still runs CG to convergence
// once (untraced) to learn its iteration count and workload, then a
// fixed-iteration CG descriptor is solved symbolically for the N_ha. PCG
// terminates on a convergence test over a preconditioned recurrence —
// there is no static affine pattern to solve — so its side keeps the
// CGPMAC estimators, exactly like RunFig6.
func RunFig6Analytic() (*Fig6Result, error) {
	res := &Fig6Result{Cache: cache.Profile8MB, Rate: dvf.FITNoECC, Tol: 1e-8}
	for _, n := range Fig6Sizes() {
		p, err := runFig6PointAnalytic(n, res.Tol, res.Cache, res.Rate)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *p)
	}
	return res, nil
}

func runFig6PointAnalytic(n int, tol float64, cfg cache.Config, rate dvf.FIT) (*Fig6Point, error) {
	cg := kernels.NewCGToConvergence(n, tol)
	cgInfo, err := cg.Run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: cg n=%d: %w", n, err)
	}
	iters := int(cgInfo.Measured["iters"])
	fixed := kernels.NewCG(n, iters)
	d, ok := kernels.Affine(fixed)
	if !ok {
		return nil, fmt.Errorf("experiments: fixed-iteration CG n=%d lost its access pattern", n)
	}
	cgApp, err := analyticApplication(cg.Name(), cgInfo, d, cfg, rate, dvf.DefaultCostModel)
	if err != nil {
		return nil, err
	}
	pcg := kernels.NewPCGToConvergence(n, tol)
	pcgInfo, err := pcg.Run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: pcg n=%d: %w", n, err)
	}
	pcgApp, err := profileFromInfo(pcg, pcgInfo, cfg, rate, dvf.DefaultCostModel)
	if err != nil {
		return nil, err
	}
	return &Fig6Point{
		N:        n,
		CGIters:  iters,
		PCGIters: int(pcgInfo.Measured["iters"]),
		CGDVF:    cgApp.Total(),
		PCGDVF:   pcgApp.Total(),
		CGHours:  cgApp.ExecHours,
		PCGHours: pcgApp.ExecHours,
	}, nil
}
