package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
)

func TestParallelRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 100} {
		const n = 37
		var hits [n]atomic.Int32
		err := Parallel(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestParallelReturnsFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := Parallel(10, 0, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Errorf("got %v, want the lowest-index error %v", err, errA)
	}
}

func TestParallelSequentialShortCircuits(t *testing.T) {
	ran := 0
	err := Parallel(10, 1, func(i int) error {
		ran++
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 3 {
		t.Errorf("sequential mode ran %d calls (err %v), want 3 then stop", ran, err)
	}
}

func TestParallelHonorsWorkerBound(t *testing.T) {
	const n, workers = 64, 3
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	err := Parallel(n, workers, func(int) error {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds bound %d", p, workers)
	}
}

func TestParallelZeroTasks(t *testing.T) {
	if err := Parallel(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Error(err)
	}
}

// TestRaceVerifyCellsSharded is the race-detector target for the Figure 4
// shape end to end: concurrent verification cells, each feeding its own
// set-sharded engine, exactly as RunFig4Workers(w>1) does — but on a cheap
// kernel so it stays fast under -race.
func TestRaceVerifyCellsSharded(t *testing.T) {
	err := Parallel(4, 2, func(i int) error {
		rows, err := VerifyKernelWorkers(kernels.NewVM(2000), cache.Small, 2+i%3)
		if err != nil {
			return err
		}
		if len(rows) != 3 {
			return fmt.Errorf("cell %d: %d rows, want 3", i, len(rows))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVerifyKernelWorkersIdenticalRows pins the engine-equivalence claim
// at the experiment layer: the same cell produces identical Fig4Rows on
// the sequential and sharded engines.
func TestVerifyKernelWorkersIdenticalRows(t *testing.T) {
	k := kernels.NewFT(2048)
	seq, err := VerifyKernel(k, cache.Small)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := VerifyKernelWorkers(kernels.NewFT(2048), cache.Small, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(shard) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(shard))
	}
	for i := range seq {
		if seq[i] != shard[i] {
			t.Errorf("row %d: sequential %+v != sharded %+v", i, seq[i], shard[i])
		}
	}
}
