// Package experiments contains the harnesses that regenerate every table
// and figure of the DVF paper's evaluation (Sections IV and V): the
// Figure 4 model verification, the Figure 5 DVF profiling, the Figure 6
// CG-vs-PCG use case and the Figure 7 ECC trade-off.
package experiments

import (
	"fmt"
	"strings"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/trace"
	"github.com/resilience-models/dvf/internal/tracez"
)

// Fig4Row is one bar pair of Figure 4: the analytically estimated and the
// simulated number of main-memory accesses for one data structure of one
// kernel on one cache configuration.
type Fig4Row struct {
	Kernel    string
	Cache     string
	Structure string
	Model     float64 // CGPMAC estimate
	Simulated float64 // cache-simulator misses on the kernel's own trace
}

// ErrorPct returns the signed relative model error in percent.
func (r Fig4Row) ErrorPct() float64 {
	if r.Simulated == 0 {
		if r.Model == 0 {
			return 0
		}
		return 100
	}
	return (r.Model - r.Simulated) / r.Simulated * 100
}

// Fig4Result aggregates the verification experiment.
type Fig4Result struct {
	Rows []Fig4Row
}

// MaxAbsErrorPct returns the largest absolute relative error across rows.
func (res *Fig4Result) MaxAbsErrorPct() float64 {
	var max float64
	for _, r := range res.Rows {
		e := r.ErrorPct()
		if e < 0 {
			e = -e
		}
		if e > max {
			max = e
		}
	}
	return max
}

// AutoWorkers is the sentinel worker count that delegates engine choice
// to cache.NewAutoEngine: each cell's replay engine is picked from the
// crossover heuristic instead of a hand-chosen worker count, and the cell
// fan-out itself runs unbounded (ParallelObs treats negative counts like
// 0). Live kernel streams have unknown length up front, so the auto
// choice is the sequential simulator — the engine that is never the
// wrong pick — while batched trace replays (dvf-trace, dvf-bench) hint
// the auto engine with the trace's actual record count.
const AutoWorkers = -1

// VerifyKernel runs one kernel traced through the sequential cache
// simulator on cfg and compares the per-structure CGPMAC estimates against
// the simulated miss counts — the Figure 4 procedure for a single
// (kernel, cache) cell.
func VerifyKernel(k kernels.Kernel, cfg cache.Config) ([]Fig4Row, error) {
	return VerifyKernelWorkers(k, cfg, 1)
}

// VerifyKernelWorkers is VerifyKernel with an explicit simulation-engine
// worker count: 1 selects the sequential Simulator, anything else the
// set-sharded parallel engine (0 = one worker per CPU, AutoWorkers = the
// adaptive crossover choice). The row values are identical either way —
// the sharded engine is bit-identical by set decomposition — only the
// wall-clock time changes.
func VerifyKernelWorkers(k kernels.Kernel, cfg cache.Config, workers int) ([]Fig4Row, error) {
	return VerifyKernelSink(k, cfg, workers, nil)
}

// VerifyKernelSink is VerifyKernelWorkers with observability: a live sink
// receives the kernel's reference-stream counters (trace.Instrumented), a
// "experiments.kernel_run_ns" timing of the traced run, the engine's
// batching/drain instruments and its final per-cell cache counters. The
// rows are byte-identical with or without a sink — instrumentation only
// observes the stream, never reorders it — which the metrics golden guard
// test asserts for every figure.
func VerifyKernelSink(k kernels.Kernel, cfg cache.Config, workers int, ms metrics.Sink) ([]Fig4Row, error) {
	return VerifyKernelObs(k, cfg, workers, ms, nil)
}

// VerifyKernelObs is VerifyKernelSink with a timeline recorder: the cell
// gets its own track ("fig4 CG/Verify256KB") carrying a "run" span
// around the traced kernel execution and a "model" span around the
// estimator evaluation, and the replay engine's own tracks (shard
// workers, drain barrier) attach via Engine.Trace. The rows are
// byte-identical with or without a recorder — the tracing guard test
// asserts this for every figure.
func VerifyKernelObs(k kernels.Kernel, cfg cache.Config, workers int, ms metrics.Sink, tz tracez.Recorder) ([]Fig4Row, error) {
	var sim cache.Engine
	var err error
	if workers == AutoWorkers {
		sim, err = cache.NewAutoEngine(cfg, cache.AutoHint{})
	} else {
		sim, err = cache.NewEngine(cfg, workers)
	}
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	sim.Instrument(ms)
	sim.Trace(tz)
	tk := tz.Track("fig4 " + k.Name() + "/" + cfg.Name)
	var sink trace.Consumer = trace.ConsumerFunc(func(r trace.Ref, owner int32) {
		sim.Access(r.Addr, r.Size, r.Write, cache.StructID(owner))
	})
	sink = trace.Instrumented(sink, ms, "experiments.trace")
	sw := ms.Timer("experiments.kernel_run_ns").Start()
	sp := tk.Begin("run")
	info, err := k.Run(sink)
	sw.Stop()
	defer sim.PublishStats(ms, "cache."+k.Name()+"."+cfg.Name)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("experiments: running %s: %w", k.Name(), err)
	}
	sp.EndInt("refs", info.Refs)
	sp = tk.Begin("model")
	defer sp.End()
	specs, err := k.Models(info)
	if err != nil {
		return nil, fmt.Errorf("experiments: modeling %s: %w", k.Name(), err)
	}
	rows := make([]Fig4Row, 0, len(specs))
	for _, spec := range specs {
		st, err := info.Structure(spec.Structure)
		if err != nil {
			return nil, err
		}
		model, err := spec.Estimator.MemoryAccesses(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", k.Name(), spec.Structure, err)
		}
		rows = append(rows, Fig4Row{
			Kernel:    k.Name(),
			Cache:     cfg.Name,
			Structure: spec.Structure,
			Model:     model,
			Simulated: float64(sim.StructStats(cache.StructID(st.ID)).Misses),
		})
	}
	return rows, nil
}

// RunFig4 executes the full Figure 4 verification: all six kernels at the
// Table V input sizes against both Table IV verification caches. The
// twelve (kernel, cache) cells are independent — each owns its kernel
// instance and simulator — so they run concurrently; results keep the
// deterministic cache-major, Table II order.
func RunFig4() (*Fig4Result, error) { return RunFig4Workers(0) }

// RunFig4Workers is RunFig4 with an explicit worker count:
//
//	workers == 1  everything strictly sequential — cells run one after
//	              another on the sequential Simulator, no goroutines at
//	              all (the drivers' -workers=1 fallback path);
//	workers == 0  the default: all cells fan out concurrently, each on a
//	              sequential engine (twelve cells already saturate the
//	              machine);
//	workers  > 1  at most `workers` cells in flight, each replaying on a
//	              set-sharded engine with `workers` shard workers — the
//	              setting that exercises ShardedSim end to end.
//	AutoWorkers   cells fan out unbounded, each replaying on whatever
//	              engine cache.NewAutoEngine picks (sequential for live
//	              kernel streams, whose length is unknown up front).
//
// The rows are identical for every setting; only wall-clock time changes.
func RunFig4Workers(workers int) (*Fig4Result, error) {
	return RunFig4Sink(workers, nil)
}

// RunFig4Sink is RunFig4Workers with a metrics sink threaded through the
// fan-out (ParallelSink) and every verification cell (VerifyKernelSink).
// A nil sink reproduces RunFig4Workers exactly; a live sink adds
// per-task/per-cell observability without changing a single output byte.
func RunFig4Sink(workers int, ms metrics.Sink) (*Fig4Result, error) {
	return RunFig4Obs(workers, ms, nil)
}

// RunFig4Obs is RunFig4Sink with a timeline recorder threaded through the
// fan-out (ParallelObs) and every verification cell (VerifyKernelObs).
// The rows are byte-identical with or without a recorder.
func RunFig4Obs(workers int, ms metrics.Sink, tz tracez.Recorder) (*Fig4Result, error) {
	type cell struct {
		cfg cache.Config
		k   kernels.Kernel
	}
	var cells []cell
	for _, cfg := range cache.VerificationConfigs() {
		for _, k := range kernels.VerificationSuite() {
			cells = append(cells, cell{cfg: cfg, k: k})
		}
	}
	engineWorkers := workers
	if workers == 0 {
		engineWorkers = 1 // concurrent cells already cover the cores
	}
	rows := make([][]Fig4Row, len(cells))
	err := ParallelObs(len(cells), workers, ms, tz, func(i int) error {
		var err error
		rows[i], err = VerifyKernelObs(cells[i].k, cells[i].cfg, engineWorkers, ms, tz)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{}
	for i := range cells {
		res.Rows = append(res.Rows, rows[i]...)
	}
	return res, nil
}

// Render formats the result as the per-kernel bar groups of Figure 4.
func (res *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: model verification (estimated vs simulated main-memory accesses)\n")
	fmt.Fprintf(&b, "%-4s %-22s %-6s %14s %14s %9s\n",
		"kern", "cache", "struct", "model", "simulated", "error")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-4s %-22s %-6s %14.0f %14.0f %+8.1f%%\n",
			r.Kernel, r.Cache, r.Structure, r.Model, r.Simulated, r.ErrorPct())
	}
	fmt.Fprintf(&b, "max |error| = %.1f%% (paper reports <= 15%%)\n", res.MaxAbsErrorPct())
	return b.String()
}
