package experiments

import (
	"strings"
	"testing"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
)

func TestBaselineMCRankingsAgree(t *testing.T) {
	// MC's structures are both fully live, so the per-flip injection
	// ranking already matches DVF's (E, the bigger and hotter table,
	// first).
	cmp, err := RunBaseline(kernels.NewMC(3000), 50, cache.Large)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DVFRanking[0] != "E" {
		t.Errorf("DVF ranking = %v, want E first", cmp.DVFRanking)
	}
	if cmp.RankRho != 1 || cmp.AbsoluteRho != 1 {
		t.Errorf("rho = %g / %g, want perfect agreement on MC", cmp.RankRho, cmp.AbsoluteRho)
	}
}

func TestBaselineCGAbsoluteRankingPutsMatrixFirst(t *testing.T) {
	if testing.Short() {
		t.Skip("injection campaign is slow")
	}
	cmp, err := RunBaseline(kernels.NewCG(100, 6), 50, cache.Large)
	if err != nil {
		t.Fatal(err)
	}
	// The per-flip rate under-ranks the matrix (one corrupted entry out of
	// 10^4 barely moves the solve), but weighting by the flips the
	// structure attracts restores DVF's ordering of the dominant term.
	if cmp.AbsoluteRanking[0] != "A" {
		t.Errorf("absolute ranking = %v, want A first", cmp.AbsoluteRanking)
	}
	// The three vectors are statistically tied (their per-flip rates sit
	// within each other's 95% margins), so only the matrix-vs-vectors
	// split is a meaningful ranking assertion; check the tie explicitly
	// rather than demanding a noise-driven order.
	var lo, hi float64 = 2, -1
	for _, name := range []string{"x", "p", "r"} {
		tally, err := cmp.Injection.Tally(name)
		if err != nil {
			t.Fatal(err)
		}
		r := tally.FailureRate()
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	someTally, _ := cmp.Injection.Tally("x")
	if hi-lo > 4*someTally.ErrorMargin() {
		t.Errorf("vector failure rates spread %.2f exceeds noise band", hi-lo)
	}
}

func TestBaselineCostRatio(t *testing.T) {
	cmp, err := RunBaseline(kernels.NewVM(2000), 60, cache.Large)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's cost claim: the model is orders of magnitude cheaper
	// than a statistically meaningful campaign. Even this small campaign
	// must cost several times the model analysis.
	if cmp.CostRatio() < 3 {
		t.Errorf("injection only %gx the model; expected a large multiple", cmp.CostRatio())
	}
	if cmp.InjectionRuns != 3*60 {
		t.Errorf("runs = %d, want 180", cmp.InjectionRuns)
	}
	out := cmp.Render()
	for _, want := range []string{"baseline comparison", "per-flip", "absolute", "rho"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// plainKernel wraps a kernel while hiding its Injectable implementation.
type plainKernel struct{ kernels.Kernel }

func TestBaselineRejectsNonInjectable(t *testing.T) {
	if _, err := RunBaseline(plainKernel{kernels.NewVM(100)}, 10, cache.Large); err == nil {
		t.Error("non-injectable kernel accepted")
	}
}
