package experiments

import (
	"fmt"
	"strings"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/tracez"
)

// Fig6Point is one problem size of the CG-vs-PCG comparison (Figure 6):
// each algorithm's application DVF plus the convergence behaviour that
// drives the trade-off.
type Fig6Point struct {
	N        int
	CGIters  int
	PCGIters int
	CGDVF    float64
	PCGDVF   float64
	CGHours  float64
	PCGHours float64
}

// Fig6Result is the sweep over problem sizes.
type Fig6Result struct {
	Cache  cache.Config
	Rate   dvf.FIT
	Tol    float64
	Points []Fig6Point
}

// Fig6Sizes returns the paper's problem-size axis (100..800).
func Fig6Sizes() []int {
	return []int{100, 200, 300, 400, 500, 600, 700, 800}
}

// RunFig6 reproduces the algorithm-optimization use case of Section V-A:
// CG and PCG are solved to the same tolerance at each problem size, their
// per-structure memory accesses modeled, and the application DVFs compared
// on the largest cache of Table IV (as the paper specifies).
//
// The trade-off is structural: PCG doubles the matrix working set (A plus
// the dense preconditioner M) and roughly doubles the per-iteration memory
// traffic, but converges in a handful of iterations while CG's iteration
// count grows with the problem's condition number — so PCG's DVF starts
// slightly worse and crosses below CG's as n grows.
func RunFig6() (*Fig6Result, error) { return RunFig6Workers(0) }

// RunFig6Workers is RunFig6 with a bound on how many problem sizes solve
// concurrently: 1 runs the sweep sequentially in the caller's goroutine
// (the -workers=1 fallback), 0 leaves the fan-out unbounded. The points
// are identical for every setting.
func RunFig6Workers(workers int) (*Fig6Result, error) {
	return RunFig6Sink(workers, nil)
}

// RunFig6Sink is RunFig6Workers with a metrics sink: per-problem-size task
// wall times via ParallelSink. The points are identical with or without a
// sink.
func RunFig6Sink(workers int, ms metrics.Sink) (*Fig6Result, error) {
	return RunFig6Obs(workers, ms, nil)
}

// RunFig6Obs is RunFig6Sink with a timeline recorder: each problem size
// gets its own track ("fig6 n=400") with "cg" and "pcg" spans carrying
// the iteration counts as args. The points are byte-identical with or
// without a recorder.
func RunFig6Obs(workers int, ms metrics.Sink, tz tracez.Recorder) (*Fig6Result, error) {
	res := &Fig6Result{Cache: cache.Profile8MB, Rate: dvf.FITNoECC, Tol: 1e-8}
	sizes := Fig6Sizes()
	points := make([]*Fig6Point, len(sizes))
	err := ParallelObs(len(sizes), workers, ms, tz, func(i int) error {
		var err error
		points[i], err = runFig6Point(sizes[i], res.Tol, res.Cache, res.Rate, tz)
		return err
	})
	if err != nil {
		return nil, err
	}
	for i := range sizes {
		res.Points = append(res.Points, *points[i])
	}
	return res, nil
}

func runFig6Point(n int, tol float64, cfg cache.Config, rate dvf.FIT, tz tracez.Recorder) (*Fig6Point, error) {
	tk := tz.Track(fmt.Sprintf("fig6 n=%d", n))
	cg := kernels.NewCGToConvergence(n, tol)
	sp := tk.Begin("cg")
	cgInfo, err := cg.Run(nil)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("experiments: cg n=%d: %w", n, err)
	}
	sp.EndInt("iters", int64(cgInfo.Measured["iters"]))
	cgApp, err := profileFromInfoObs(cg, cgInfo, cfg, rate, dvf.DefaultCostModel, tk)
	if err != nil {
		return nil, err
	}
	pcg := kernels.NewPCGToConvergence(n, tol)
	sp = tk.Begin("pcg")
	pcgInfo, err := pcg.Run(nil)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("experiments: pcg n=%d: %w", n, err)
	}
	sp.EndInt("iters", int64(pcgInfo.Measured["iters"]))
	pcgApp, err := profileFromInfoObs(pcg, pcgInfo, cfg, rate, dvf.DefaultCostModel, tk)
	if err != nil {
		return nil, err
	}
	return &Fig6Point{
		N:        n,
		CGIters:  int(cgInfo.Measured["iters"]),
		PCGIters: int(pcgInfo.Measured["iters"]),
		CGDVF:    cgApp.Total(),
		PCGDVF:   pcgApp.Total(),
		CGHours:  cgApp.ExecHours,
		PCGHours: pcgApp.ExecHours,
	}, nil
}

// CrossoverSize returns the first problem size at which PCG's DVF drops
// below CG's, or 0 when no crossover occurs in the sweep.
func (r *Fig6Result) CrossoverSize() int {
	for _, p := range r.Points {
		if p.PCGDVF < p.CGDVF {
			return p.N
		}
	}
	return 0
}

// Render formats the comparison as the Figure 6 series.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: CG vs PCG (cache %s, FIT=%g, tol=%g)\n",
		r.Cache.Name, float64(r.Rate), r.Tol)
	fmt.Fprintf(&b, "%6s %8s %9s %14s %14s %10s\n",
		"n", "CG iter", "PCG iter", "DVF(CG)", "DVF(PCG)", "winner")
	for _, p := range r.Points {
		winner := "CG"
		if p.PCGDVF < p.CGDVF {
			winner = "PCG"
		}
		fmt.Fprintf(&b, "%6d %8d %9d %14.6g %14.6g %10s\n",
			p.N, p.CGIters, p.PCGIters, p.CGDVF, p.PCGDVF, winner)
	}
	if x := r.CrossoverSize(); x > 0 {
		fmt.Fprintf(&b, "PCG becomes less vulnerable than CG at n=%d\n", x)
	}
	return b.String()
}
