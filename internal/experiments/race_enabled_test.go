//go:build race

package experiments

// raceEnabled reports whether this test binary was built with -race; the
// golden-file tests use it to skip re-running the heavyweight figure
// sweeps whose byte-level output is engine-agnostic and already covered
// by the non-race runs.
const raceEnabled = true
