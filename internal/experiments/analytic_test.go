package experiments

import (
	"bytes"
	"testing"
)

// The analytic engine's experiments-layer contract: the live differential
// stays within the documented tolerances, its CSV is deterministic across
// fan-out schedules, and the analytic figure variants reproduce their
// goldens byte for byte (the per-solver accuracy wall lives in
// internal/analytic; these tests cover the wiring above it).

func TestAnalyticDiffWithinTolerance(t *testing.T) {
	res, err := RunAnalyticDiff(nil, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Cells) == 0 {
		t.Fatalf("empty differential: %d rows, %d cells", len(res.Rows), len(res.Cells))
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenAnalyticDiffCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("verification replays are slow")
	}
	render := func(workers int) []byte {
		res, err := RunAnalyticDiff(nil, workers, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	if par := render(0); !bytes.Equal(seq, par) {
		t.Error("parallel analytic-diff CSV differs from the sequential run")
	}
	goldenCompare(t, "analytic_diff.csv", seq)
}

func TestGoldenFig4AnalyticCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("model estimators replay template traces")
	}
	res, err := RunFig4Analytic()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig4_analytic.csv", buf.Bytes())
}

func TestGoldenFig5AnalyticCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling-size kernel runs are slow")
	}
	res, err := RunFig5Analytic()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig5_analytic.csv", buf.Bytes())
}

func TestGoldenFig6AnalyticCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence sweep is slow")
	}
	res, err := RunFig6Analytic()
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossoverSize() == 0 {
		t.Error("analytic Fig6 lost the CG/PCG crossover")
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig6_analytic.csv", buf.Bytes())
}
