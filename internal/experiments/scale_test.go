package experiments

import (
	"math"
	"sync"
	"testing"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
)

// TestVerificationAtProfilingSizes re-runs the Figure 4 comparison at the
// Table VI (profiling) input sizes: the models must hold as the working
// sets grow by one to two orders of magnitude, not just at the sizes the
// paper's verification used. The traces are tens of millions of
// references, so the kernels run concurrently and the test is skipped in
// short mode.
func TestVerificationAtProfilingSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling-size traces are large")
	}
	// CG at 800x800 with the template-replay p model doubles the cost for
	// little extra signal (the replay is exact by construction); the
	// closed-form set is representative at scale.
	suite := []kernels.Kernel{
		kernels.NewVM(100000),
		kernels.NewNB(6000),
		kernels.NewMG(64, 1),
		kernels.NewMC(100000),
	}
	type result struct {
		rows []Fig4Row
		err  error
	}
	results := make([]result, len(suite))
	var wg sync.WaitGroup
	for i, k := range suite {
		wg.Add(1)
		go func(i int, k kernels.Kernel) {
			defer wg.Done()
			rows, err := VerifyKernel(k, cache.Small)
			results[i] = result{rows: rows, err: err}
		}(i, k)
	}
	wg.Wait()
	for _, res := range results {
		if res.err != nil {
			t.Fatal(res.err)
		}
		for _, r := range res.rows {
			if e := math.Abs(r.ErrorPct()); e > 15 {
				t.Errorf("%s/%s at profiling size: %.1f%% error (model %.0f, sim %.0f)",
					r.Kernel, r.Structure, e, r.Model, r.Simulated)
			}
		}
	}
}
