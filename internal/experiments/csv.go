package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers for every figure, so the regenerated data can be plotted
// directly. Each writer emits one header row and one record per point,
// matching the figure's axes.

// WriteCSV emits kernel,cache,structure,model,simulated,error_pct rows.
func (res *Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kernel", "cache", "structure", "model", "simulated", "error_pct"}); err != nil {
		return err
	}
	for _, r := range res.Rows {
		rec := []string{
			r.Kernel, r.Cache, r.Structure,
			strconv.FormatFloat(r.Model, 'g', -1, 64),
			strconv.FormatFloat(r.Simulated, 'g', -1, 64),
			strconv.FormatFloat(r.ErrorPct(), 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits kernel,cache,structure,dvf rows (DVF_a appears as the
// structure "DVF_a", matching the figure's per-kernel aggregate bar).
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kernel", "cache", "structure", "dvf"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		rec := []string{c.Kernel, c.Cache, c.Structure, strconv.FormatFloat(c.DVF, 'g', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits n,cg_iters,pcg_iters,cg_dvf,pcg_dvf rows.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"n", "cg_iters", "pcg_iters", "cg_dvf", "pcg_dvf"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		rec := []string{
			strconv.Itoa(p.N),
			strconv.Itoa(p.CGIters),
			strconv.Itoa(p.PCGIters),
			strconv.FormatFloat(p.CGDVF, 'g', -1, 64),
			strconv.FormatFloat(p.PCGDVF, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits kernel,cache,structure,analytic,simulated,lines,tolerance,
// error_pct rows — the engine=analytic live differential. The timing cells
// are deliberately excluded: the CSV is deterministic and golden-testable.
// The analytic column is rounded to 10 significant digits, far below the
// tolerance contract but above the last-ulp drift FMA fusion introduces
// between architectures.
func (res *AnalyticResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kernel", "cache", "structure", "analytic", "simulated", "lines", "tolerance", "error_pct"}); err != nil {
		return err
	}
	for _, r := range res.Rows {
		rec := []string{
			r.Kernel, r.Cache, r.Structure,
			strconv.FormatFloat(r.Analytic, 'g', 10, 64),
			strconv.FormatFloat(r.Simulated, 'f', -1, 64),
			strconv.FormatInt(r.Lines, 10),
			strconv.FormatFloat(r.Tolerance, 'g', -1, 64),
			strconv.FormatFloat(r.ErrorPct(), 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits degradation_pct followed by one DVF column per mechanism.
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"degradation_pct"}
	for _, s := range r.Series {
		header = append(header, s.Mechanism.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(r.Series) == 0 {
		cw.Flush()
		return cw.Error()
	}
	for i := range r.Series[0].Points {
		rec := []string{strconv.FormatFloat(r.Series[0].Points[i].DegradationPct, 'f', 0, 64)}
		for _, s := range r.Series {
			if i >= len(s.Points) {
				return fmt.Errorf("experiments: ragged Fig7 series")
			}
			rec = append(rec, strconv.FormatFloat(s.Points[i].DVF, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
