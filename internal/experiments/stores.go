package experiments

import (
	"fmt"
	"strings"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/trace"
)

// StoreRow compares a structure's modeled writebacks against the simulator
// — the write half of the paper's "misses and writebacks" accounting.
type StoreRow struct {
	Kernel    string
	Cache     string
	Structure string
	Model     float64
	Simulated float64
}

// ErrorPct returns the signed relative model error in percent. Rows where
// both sides are tiny (read-only structures) report zero.
func (r StoreRow) ErrorPct() float64 {
	if r.Simulated < 1 {
		if r.Model < 1 {
			return 0
		}
		return 100
	}
	return (r.Model - r.Simulated) / r.Simulated * 100
}

// VerifyStores traces one store-modeling kernel through the simulator and
// compares per-structure writeback counts.
func VerifyStores(k kernels.StoreModeler, cfg cache.Config) ([]StoreRow, error) {
	sim, err := cache.NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	sink := trace.ConsumerFunc(func(r trace.Ref, owner int32) {
		sim.Access(r.Addr, r.Size, r.Write, cache.StructID(owner))
	})
	info, err := k.Run(sink)
	if err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", k.Name(), err)
	}
	specs, err := k.StoreModels(info)
	if err != nil {
		return nil, err
	}
	rows := make([]StoreRow, 0, len(specs))
	for _, spec := range specs {
		st, err := info.Structure(spec.Structure)
		if err != nil {
			return nil, err
		}
		model, err := spec.Estimate.Writebacks(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s stores: %w", k.Name(), spec.Structure, err)
		}
		rows = append(rows, StoreRow{
			Kernel:    k.Name(),
			Cache:     cfg.Name,
			Structure: spec.Structure,
			Model:     model,
			Simulated: float64(sim.StructStats(cache.StructID(st.ID)).Writebacks),
		})
	}
	return rows, nil
}

// StoreModelers returns the verification-size kernels with store models.
func StoreModelers() []kernels.StoreModeler {
	return []kernels.StoreModeler{
		kernels.NewVM(1000),
		kernels.NewMG(32, 1),
		kernels.NewFT(2048),
	}
}

// RenderStoreRows formats a writeback-verification table.
func RenderStoreRows(rows []StoreRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "store-traffic verification (modeled vs simulated writebacks)\n")
	fmt.Fprintf(&b, "%-4s %-22s %-6s %14s %14s %9s\n",
		"kern", "cache", "struct", "model", "simulated", "error")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %-22s %-6s %14.0f %14.0f %+8.1f%%\n",
			r.Kernel, r.Cache, r.Structure, r.Model, r.Simulated, r.ErrorPct())
	}
	return b.String()
}
