package experiments

// Tables V and VI: the input sizes of the verification and profiling runs.
// These constants pin the suite constructors in the kernels package; the
// TestTableVInputs/TestTableVIInputs tests assert the two stay in sync.

// InputSize describes one row of Table V or Table VI.
type InputSize struct {
	Kernel      string
	Description string // the paper's wording
	Value       int    // the size parameter handed to the kernel constructor
}

// TableV returns the verification input sizes (Table V).
func TableV() []InputSize {
	return []InputSize{
		{"VM", "10^3 Integer Array", 1000},
		{"CG", "500*500 Double Matrix", 500},
		{"NB", "1000 Particles", 1000},
		{"MG", "Problem class = S (32^3 grid)", 32},
		{"FT", "Problem class = S (2048-point 1D segment)", 2048},
		{"MC", "Size = small, Lookups = 10^3", 1000},
	}
}

// TableVI returns the profiling input sizes (Table VI).
func TableVI() []InputSize {
	return []InputSize{
		{"VM", "10^5 Integer Array", 100000},
		{"CG", "800*800 Double Matrix", 800},
		{"NB", "6000 Particles", 6000},
		{"MG", "Problem class = W (64^3 grid)", 64},
		{"FT", "Problem class = S (2048-point 1D segment)", 2048},
		{"MC", "Size = small, Lookups = 10^5", 100000},
	}
}
