package experiments

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/tracez"
)

// Parallel runs fn(0) … fn(n-1), returning the first error in index order.
//
// workers bounds the number of concurrently running calls: 1 runs every
// call sequentially in the caller's goroutine (the deterministic fallback
// behind the drivers' -workers=1 flag — no goroutines at all), 0 or a
// value >= n imposes no bound (the historical fan-out of the figure
// drivers), and anything in between gates the calls through a semaphore.
// All experiment fan-outs — RunFig4, RunFig5, RunFig6 and core.Explore —
// route through this helper, so its concurrency discipline is what the
// race-targeted tests exercise.
func Parallel(n, workers int, fn func(int) error) error {
	return ParallelSink(n, workers, nil, fn)
}

// ParallelSink is Parallel with observability: with a live sink it records
// each task's wall time in the "experiments.task_ns" histogram, accumulates
// "experiments.tasks" and "experiments.busy_ns" counters and the
// "experiments.wall_ns" counter for the fan-out's own elapsed time — the
// inputs to a worker-utilization ratio busy/(wall*workers). A nil sink is
// exactly Parallel: the task closures are not even wrapped, so the
// scheduling (and therefore any timing-sensitive interleaving) is
// untouched.
func ParallelSink(n, workers int, sink metrics.Sink, fn func(int) error) error {
	return ParallelObs(n, workers, sink, nil, fn)
}

// ParallelObs is ParallelSink with a timeline recorder: with a live
// recorder each task samples the "experiments.inflight" counter on entry
// and exit (the fan-out's concurrency over time, a stepped lane in
// Perfetto) and runs under a pprof goroutine label
// ("experiments.task" = index), so live CPU and goroutine profiles can
// attribute samples to figure cells. A nil recorder is exactly
// ParallelSink — the task closures are not wrapped at all.
func ParallelObs(n, workers int, sink metrics.Sink, tz tracez.Recorder, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if tz != nil {
		inflight := tz.Counter("experiments.inflight")
		var cur atomic.Int64
		inner := fn
		fn = func(i int) error {
			inflight.Sample(cur.Add(1))
			defer func() { inflight.Sample(cur.Add(-1)) }()
			var err error
			pprof.Do(context.Background(), pprof.Labels("experiments.task", strconv.Itoa(i)), func(context.Context) {
				err = inner(i)
			})
			return err
		}
	}
	if sink != nil {
		taskNs := sink.Histogram("experiments.task_ns")
		tasks := sink.Counter("experiments.tasks")
		busy := sink.Counter("experiments.busy_ns")
		wall := sink.Counter("experiments.wall_ns")
		inner := fn
		fn = func(i int) error {
			t0 := time.Now()
			err := inner(i)
			d := time.Since(t0).Nanoseconds()
			taskNs.Observe(d)
			busy.Add(d)
			tasks.Inc()
			return err
		}
		t0 := time.Now()
		defer func() { wall.Add(time.Since(t0).Nanoseconds()) }()
	}
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var sem chan struct{}
	if workers > 0 && workers < n {
		sem = make(chan struct{}, workers)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
