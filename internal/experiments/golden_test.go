package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// Golden-file tests for the CSV writers: every figure's CSV is checked in
// under testdata/ and each sweep must reproduce it byte for byte — under
// both the strictly sequential path (-workers=1, no goroutines at all)
// and the default parallel fan-out — proving that neither the concurrency
// schedule nor the simulation engine leaks into the output.
//
// Regenerate with:
//
//	go test ./internal/experiments/ -run TestGolden -update
//
// The goldens encode exact float formatting, so they are tied to this
// repository's reference platform (amd64); on an architecture whose
// compiler fuses multiply-adds differently, regenerate rather than chase
// last-ulp differences.
var update = flag.Bool("update", false, "rewrite the golden CSV files under testdata/")

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden CSVs are pinned to the amd64 reference platform; GOARCH=%s fuses multiply-adds differently", runtime.GOARCH)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output is not byte-identical to the golden file (len %d vs %d)",
			name, len(got), len(want))
	}
}

func TestGoldenFig4CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification sweep is slow")
	}
	if raceEnabled {
		t.Skip("byte-identity is engine-agnostic; race runs cover the fan-outs elsewhere")
	}
	render := func(workers int) []byte {
		res, err := RunFig4Workers(workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	goldenCompare(t, "fig4.csv", seq)
	if par := render(0); !bytes.Equal(seq, par) {
		t.Error("parallel Fig4 CSV differs from the sequential run")
	}
	// workers=4 routes every cell through the set-sharded engine.
	if sharded := render(4); !bytes.Equal(seq, sharded) {
		t.Error("sharded-engine Fig4 CSV differs from the sequential run")
	}
	// AutoWorkers lets every cell pick its engine from the crossover
	// heuristic — the dvf-verify -workers=-1 path.
	if auto := render(AutoWorkers); !bytes.Equal(seq, auto) {
		t.Error("auto-engine Fig4 CSV differs from the sequential run")
	}
}

func TestGoldenFig5CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep is slow")
	}
	if raceEnabled {
		t.Skip("byte-identity is engine-agnostic; race runs cover the fan-outs elsewhere")
	}
	render := func(workers int) []byte {
		res, err := RunFig5Workers(workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	goldenCompare(t, "fig5.csv", seq)
	if par := render(0); !bytes.Equal(seq, par) {
		t.Error("parallel Fig5 CSV differs from the sequential run")
	}
	if auto := render(AutoWorkers); !bytes.Equal(seq, auto) {
		t.Error("auto-workers Fig5 CSV differs from the sequential run")
	}
}

func TestGoldenFig6CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence sweep is slow")
	}
	if raceEnabled {
		t.Skip("byte-identity is engine-agnostic; race runs cover the fan-outs elsewhere")
	}
	render := func(workers int) []byte {
		res, err := RunFig6Workers(workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	goldenCompare(t, "fig6.csv", seq)
	if par := render(0); !bytes.Equal(seq, par) {
		t.Error("parallel Fig6 CSV differs from the sequential run")
	}
	if auto := render(AutoWorkers); !bytes.Equal(seq, auto) {
		t.Error("auto-workers Fig6 CSV differs from the sequential run")
	}
}

func TestGoldenFig7CSV(t *testing.T) {
	res, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig7.csv", buf.Bytes())
}
