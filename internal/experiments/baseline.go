package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/inject"
	"github.com/resilience-models/dvf/internal/kernels"
)

// BaselineComparison contrasts the DVF methodology with the traditional
// statistical fault-injection baseline on one kernel: both produce a
// vulnerability ranking of the kernel's data structures; DVF does it with
// one model evaluation, the baseline with trials-per-structure full
// application runs. The paper's Section I claim — injection "is
// prohibitively expensive" while the Aspen-based evaluation runs "at the
// time granularity of seconds" — becomes a measured cost ratio here.
type BaselineComparison struct {
	Kernel string
	// DVFRanking orders structures by DVF, most vulnerable first.
	DVFRanking []string
	// InjectRanking orders structures by the campaign's per-flip failure
	// rate — the conditional probability that a bit flip corrupts the
	// output, which ignores how *many* flips a structure attracts.
	InjectRanking []string
	// AbsoluteRanking orders structures by failure rate times structure
	// size — the empirical expected-corruption ranking, i.e. the
	// injection-side quantity commensurable with DVF's N_error weighting.
	AbsoluteRanking []string
	RankRho         float64 // Spearman rho: DVF vs per-flip ranking
	AbsoluteRho     float64 // Spearman rho: DVF vs absolute ranking
	DVFSeconds      float64 // wall time of the model-based analysis
	InjectSeconds   float64 // wall time of the injection campaign
	InjectionRuns   int     // full executions the campaign needed
	Injection       *inject.Result
	DVF             *dvf.Application
}

// CostRatio returns how much more expensive the injection campaign was.
func (b *BaselineComparison) CostRatio() float64 {
	if b.DVFSeconds == 0 {
		return 0
	}
	return b.InjectSeconds / b.DVFSeconds
}

// RunBaseline executes the comparison for one injectable kernel.
func RunBaseline(k kernels.Kernel, trials int, cfg cache.Config) (*BaselineComparison, error) {
	injectable, err := inject.AsInjectable(k)
	if err != nil {
		return nil, err
	}

	// DVF side: one untraced run plus model evaluations.
	//dvf:allow determinism DVFSeconds is the paper's measured analysis cost, reported in prose, never in golden CSVs
	t0 := time.Now()
	app, err := ProfileKernel(k, cfg, dvf.FITNoECC, dvf.DefaultCostModel)
	if err != nil {
		return nil, err
	}
	dvfSeconds := time.Since(t0).Seconds()
	dvfRank := make([]dvf.StructureDVF, len(app.Structures))
	copy(dvfRank, app.Structures)
	sort.SliceStable(dvfRank, func(i, j int) bool { return dvfRank[i].DVF > dvfRank[j].DVF })
	dvfNames := make([]string, len(dvfRank))
	for i, s := range dvfRank {
		dvfNames[i] = s.Name
	}

	// Baseline side: the injection campaign.
	//dvf:allow determinism InjectSeconds is the measured campaign cost backing the paper's cost-ratio claim, reported not golden
	t0 = time.Now()
	campaign := &inject.Campaign{Kernel: injectable, Trials: trials, Seed: 17}
	res, err := campaign.Run()
	if err != nil {
		return nil, err
	}
	injectSeconds := time.Since(t0).Seconds()

	injNames := res.Ranking()
	rho, err := inject.RankCorrelation(dvfNames, injNames)
	if err != nil {
		return nil, err
	}

	// Absolute (size-weighted) injection ranking: expected corruptions
	// scale with the flips a structure attracts, i.e. with its N_error,
	// which for a fixed run is proportional to its size.
	type weighted struct {
		name string
		v    float64
	}
	abs := make([]weighted, 0, len(app.Structures))
	for _, s := range app.Structures {
		tally, err := res.Tally(s.Name)
		if err != nil {
			return nil, err
		}
		abs = append(abs, weighted{name: s.Name, v: tally.FailureRate() * float64(s.Bytes)})
	}
	sort.SliceStable(abs, func(i, j int) bool { return abs[i].v > abs[j].v })
	absNames := make([]string, len(abs))
	for i, w := range abs {
		absNames[i] = w.name
	}
	absRho, err := inject.RankCorrelation(dvfNames, absNames)
	if err != nil {
		return nil, err
	}

	return &BaselineComparison{
		Kernel:          k.Name(),
		DVFRanking:      dvfNames,
		InjectRanking:   injNames,
		AbsoluteRanking: absNames,
		RankRho:         rho,
		AbsoluteRho:     absRho,
		DVFSeconds:      dvfSeconds,
		InjectSeconds:   injectSeconds,
		InjectionRuns:   res.GoldenRuns,
		Injection:       res,
		DVF:             app,
	}, nil
}

// Render formats the comparison.
func (b *BaselineComparison) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "baseline comparison: %s\n", b.Kernel)
	fmt.Fprintf(&sb, "  DVF ranking (model, %.3fs):        %s\n",
		b.DVFSeconds, strings.Join(b.DVFRanking, " > "))
	fmt.Fprintf(&sb, "  injection per-flip ranking (%d runs, %.3fs): %s\n",
		b.InjectionRuns, b.InjectSeconds, strings.Join(b.InjectRanking, " > "))
	fmt.Fprintf(&sb, "  injection absolute ranking:         %s\n",
		strings.Join(b.AbsoluteRanking, " > "))
	fmt.Fprintf(&sb, "  Spearman rho = %.2f (per-flip), %.2f (absolute); injection cost = %.0fx the model\n",
		b.RankRho, b.AbsoluteRho, b.CostRatio())
	sb.WriteString(b.Injection.Render())
	return sb.String()
}
