package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"github.com/resilience-models/dvf/internal/dvf"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return records
}

func TestFig4CSV(t *testing.T) {
	res := &Fig4Result{Rows: []Fig4Row{
		{Kernel: "VM", Cache: "Small", Structure: "A", Model: 1000, Simulated: 1000},
		{Kernel: "NB", Cache: "Small", Structure: "T", Model: 90, Simulated: 100},
	}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rec := parseCSV(t, &buf)
	if len(rec) != 3 || rec[0][0] != "kernel" {
		t.Fatalf("records: %v", rec)
	}
	if rec[2][5] != "-10.00" {
		t.Errorf("error column = %q, want -10.00", rec[2][5])
	}
}

func TestFig5CSV(t *testing.T) {
	res := &Fig5Result{Cells: []Fig5Cell{
		{Kernel: "FT", Cache: "16KB", Structure: "X", DVF: 7.2e-8},
		{Kernel: "FT", Cache: "16KB", Structure: "DVF_a", DVF: 7.2e-8},
	}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rec := parseCSV(t, &buf)
	if len(rec) != 3 {
		t.Fatalf("records: %v", rec)
	}
	if v, err := strconv.ParseFloat(rec[1][3], 64); err != nil || v != 7.2e-8 {
		t.Errorf("dvf column = %q", rec[1][3])
	}
}

func TestFig6CSV(t *testing.T) {
	res := &Fig6Result{Points: []Fig6Point{
		{N: 100, CGIters: 12, PCGIters: 8, CGDVF: 1e-10, PCGDVF: 2e-10},
	}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rec := parseCSV(t, &buf)
	if len(rec) != 2 || rec[1][0] != "100" || rec[1][1] != "12" {
		t.Fatalf("records: %v", rec)
	}
}

func TestFig7CSV(t *testing.T) {
	res := &Fig7Result{Series: []Fig7Series{
		{Mechanism: dvf.SECDED, Points: []dvf.SweepPoint{{DegradationPct: 0, DVF: 1}, {DegradationPct: 1, DVF: 0.5}}},
		{Mechanism: dvf.Chipkill, Points: []dvf.SweepPoint{{DegradationPct: 0, DVF: 1}, {DegradationPct: 1, DVF: 0.1}}},
	}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rec := parseCSV(t, &buf)
	if len(rec) != 3 {
		t.Fatalf("records: %v", rec)
	}
	if !strings.Contains(rec[0][1], "SECDED") {
		t.Errorf("header = %v", rec[0])
	}
	if rec[2][2] != "0.1" {
		t.Errorf("chipkill column = %q", rec[2][2])
	}
}

func TestFig7CSVRaggedSeries(t *testing.T) {
	res := &Fig7Result{Series: []Fig7Series{
		{Mechanism: dvf.SECDED, Points: []dvf.SweepPoint{{DVF: 1}, {DVF: 2}}},
		{Mechanism: dvf.Chipkill, Points: []dvf.SweepPoint{{DVF: 1}}},
	}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestFig7CSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Fig7Result{}).WriteCSV(&buf); err != nil {
		t.Errorf("empty result should write a bare header: %v", err)
	}
}
