package experiments

import (
	"fmt"
	"strings"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/tracez"
)

// Fig5Cell is one bar of Figure 5: the DVF of one data structure of one
// kernel under one cache configuration (plus the per-kernel DVF_a bars the
// figure shows alongside).
type Fig5Cell struct {
	Kernel    string
	Cache     string
	Structure string // "DVF_a" for the application aggregate
	DVF       float64
}

// Fig5Result holds the full profiling sweep.
type Fig5Result struct {
	Rate  dvf.FIT
	Cells []Fig5Cell
}

// Lookup returns the DVF for (kernel, cache, structure).
func (r *Fig5Result) Lookup(kernel, cacheName, structure string) (float64, error) {
	for _, c := range r.Cells {
		if c.Kernel == kernel && c.Cache == cacheName && c.Structure == structure {
			return c.DVF, nil
		}
	}
	return 0, fmt.Errorf("experiments: no cell %s/%s/%s", kernel, cacheName, structure)
}

// ProfileKernel computes the DVF of every major structure of one kernel on
// one cache configuration: the kernel runs once untraced to expose its
// workload counts and profiled model inputs, the CGPMAC models estimate
// per-structure N_ha, the cost model turns the workload into T, and
// Equation 1 does the rest.
func ProfileKernel(k kernels.Kernel, cfg cache.Config, rate dvf.FIT, cost dvf.CostModel) (*dvf.Application, error) {
	info, err := k.Run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", k.Name(), err)
	}
	return profileFromInfo(k, info, cfg, rate, cost)
}

// profileFromInfo evaluates the models of a prior run against cfg.
func profileFromInfo(k kernels.Kernel, info *kernels.RunInfo, cfg cache.Config, rate dvf.FIT, cost dvf.CostModel) (*dvf.Application, error) {
	return profileFromInfoObs(k, info, cfg, rate, cost, nil)
}

// profileFromInfoObs is profileFromInfo with the final DVF aggregation
// recorded as a span on tk (nil is a no-op) — the per-cell track of the
// calling driver, so model evaluation and aggregation nest visibly.
func profileFromInfoObs(k kernels.Kernel, info *kernels.RunInfo, cfg cache.Config, rate dvf.FIT, cost dvf.CostModel, tk *tracez.Track) (*dvf.Application, error) {
	specs, err := k.Models(info)
	if err != nil {
		return nil, fmt.Errorf("experiments: modeling %s: %w", k.Name(), err)
	}
	var (
		names []string
		sizes []int64
		nhas  []float64
		total float64
	)
	for _, spec := range specs {
		st, err := info.Structure(spec.Structure)
		if err != nil {
			return nil, err
		}
		nha, err := spec.Estimator.MemoryAccesses(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s on %s: %w",
				k.Name(), spec.Structure, cfg.Name, err)
		}
		names = append(names, spec.Structure)
		sizes = append(sizes, st.Bytes)
		nhas = append(nhas, nha)
		total += nha
	}
	hours := cost.ExecHours(info.Refs, total, float64(info.Flops))
	return dvf.NewApplicationObs(k.Name(), rate, hours, names, sizes, nhas, tk)
}

// RunFig5 executes the full Figure 5 profiling: the six kernels at the
// Table VI input sizes across the four profiling caches of Table IV, with
// the unprotected FIT rate of Table VII. Kernels profile concurrently
// (each owns its state); cells keep the Table II, capacity-ascending order.
func RunFig5() (*Fig5Result, error) { return RunFig5Workers(0) }

// RunFig5Workers is RunFig5 with a bound on how many kernels profile
// concurrently: 1 profiles them sequentially in the caller's goroutine
// (the -workers=1 fallback), 0 leaves the fan-out unbounded. The cells are
// identical for every setting.
func RunFig5Workers(workers int) (*Fig5Result, error) {
	return RunFig5Sink(workers, nil)
}

// RunFig5Sink is RunFig5Workers with a metrics sink: per-kernel task wall
// times via ParallelSink and untraced kernel-run timings under
// "experiments.kernel_run_ns". The cells are identical with or without a
// sink.
func RunFig5Sink(workers int, ms metrics.Sink) (*Fig5Result, error) {
	return RunFig5Obs(workers, ms, nil)
}

// RunFig5Obs is RunFig5Sink with a timeline recorder: each kernel's
// profiling task gets its own track ("fig5 CG") with a span for the
// untraced run and one per evaluated cache. The cells are byte-identical
// with or without a recorder.
func RunFig5Obs(workers int, ms metrics.Sink, tz tracez.Recorder) (*Fig5Result, error) {
	res := &Fig5Result{Rate: dvf.FITNoECC}
	suite := kernels.ProfilingSuite()
	cells := make([][]Fig5Cell, len(suite))
	err := ParallelObs(len(suite), workers, ms, tz, func(i int) error {
		var err error
		cells[i], err = profileAllCaches(suite[i], res.Rate, ms, tz)
		return err
	})
	if err != nil {
		return nil, err
	}
	for i := range suite {
		res.Cells = append(res.Cells, cells[i]...)
	}
	return res, nil
}

// profileAllCaches runs one kernel once and evaluates its models against
// every profiling cache.
func profileAllCaches(k kernels.Kernel, rate dvf.FIT, ms metrics.Sink, tz tracez.Recorder) ([]Fig5Cell, error) {
	tk := tz.Track("fig5 " + k.Name())
	sw := ms.Timer("experiments.kernel_run_ns").Start()
	sp := tk.Begin("run")
	info, err := k.Run(nil)
	sw.Stop()
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.EndInt("refs", info.Refs)
	var out []Fig5Cell
	for _, cfg := range cache.ProfilingConfigs() {
		sp := tk.Begin("profile " + cfg.Name)
		app, err := profileFromInfoObs(k, info, cfg, rate, dvf.DefaultCostModel, tk)
		sp.End()
		if err != nil {
			return nil, err
		}
		for _, s := range app.Structures {
			out = append(out, Fig5Cell{
				Kernel: k.Name(), Cache: cfg.Name, Structure: s.Name, DVF: s.DVF,
			})
		}
		out = append(out, Fig5Cell{
			Kernel: k.Name(), Cache: cfg.Name, Structure: "DVF_a", DVF: app.Total(),
		})
	}
	return out, nil
}

// Render formats the profiling results as the six bar groups of Figure 5.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: DVF profiling (FIT=%g)\n", float64(r.Rate))
	fmt.Fprintf(&b, "%-4s %-22s %-7s %14s\n", "kern", "cache", "struct", "DVF")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-4s %-22s %-7s %14.6g\n", c.Kernel, c.Cache, c.Structure, c.DVF)
	}
	return b.String()
}
