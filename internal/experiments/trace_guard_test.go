package experiments

import (
	"bytes"
	"testing"

	"github.com/resilience-models/dvf/internal/tracez"
)

// These tests guard the zero-interference contract of the span recorder,
// the tracing twin of metrics_guard_test.go: threading a live tracer
// through every figure driver must never change its scientific output.
// Each figure's CSV is rendered twice — once through the plain entry
// point (nil recorder) and once with a live in-memory tracer — and the
// two byte streams must be identical, while the trace the live run
// produced must itself be non-trivial and schema-valid.

// requireValidTrace dumps the tracer and runs the package's own schema
// validator over the result: named events, balanced pairs, non-negative
// timestamps, known metadata kinds.
func requireValidTrace(t *testing.T, tz *tracez.Tracer) {
	t.Helper()
	var buf bytes.Buffer
	if err := tz.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := tracez.ValidateReader(&buf)
	if err != nil {
		t.Fatalf("live trace is schema-invalid: %v", err)
	}
	spans := 0
	for _, ev := range events {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("live tracer recorded no spans; the sweep is not instrumented")
	}
}

func TestFig7CSVUnchangedByTracing(t *testing.T) {
	off := csvFig(t, func() (csvWriter, error) {
		return RunFig7()
	})
	tz := tracez.New()
	on := csvFig(t, func() (csvWriter, error) {
		return RunFig7Obs(nil, tz)
	})
	if !bytes.Equal(off, on) {
		t.Error("Fig7 CSV differs with tracing enabled")
	}
	requireValidTrace(t, tz)
}

func TestFig6CSVUnchangedByTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence sweep is slow")
	}
	off := csvFig(t, func() (csvWriter, error) {
		return RunFig6Workers(1)
	})
	tz := tracez.New()
	on := csvFig(t, func() (csvWriter, error) {
		return RunFig6Obs(1, nil, tz)
	})
	if !bytes.Equal(off, on) {
		t.Error("Fig6 CSV differs with tracing enabled")
	}
	requireValidTrace(t, tz)
}

func TestFig5CSVUnchangedByTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep is slow")
	}
	if raceEnabled {
		t.Skip("byte-identity is schedule-agnostic; race runs cover the recorder elsewhere")
	}
	off := csvFig(t, func() (csvWriter, error) {
		return RunFig5Workers(1)
	})
	tz := tracez.New()
	on := csvFig(t, func() (csvWriter, error) {
		return RunFig5Obs(1, nil, tz)
	})
	if !bytes.Equal(off, on) {
		t.Error("Fig5 CSV differs with tracing enabled")
	}
	requireValidTrace(t, tz)
}

func TestFig4CSVUnchangedByTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification sweep is slow")
	}
	if raceEnabled {
		t.Skip("byte-identity is schedule-agnostic; race runs cover the recorder elsewhere")
	}
	off := csvFig(t, func() (csvWriter, error) {
		return RunFig4Workers(1)
	})
	tz := tracez.New()
	on := csvFig(t, func() (csvWriter, error) {
		return RunFig4Obs(1, nil, tz)
	})
	if !bytes.Equal(off, on) {
		t.Error("Fig4 CSV differs with tracing enabled")
	}
	requireValidTrace(t, tz)
}
