package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/kernels"
)

// TestFig4AllWithin15Percent is the paper's headline verification claim:
// "The estimation error is within 15% in all cases."
func TestFig4AllWithin15Percent(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification is slow")
	}
	res, err := RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no verification rows")
	}
	for _, r := range res.Rows {
		if e := math.Abs(r.ErrorPct()); e > 15 {
			t.Errorf("%s/%s on %s: error %.1f%% exceeds the paper's 15%% bound",
				r.Kernel, r.Structure, r.Cache, e)
		}
	}
	// 13 structures across 6 kernels, on 2 caches.
	if len(res.Rows) != 26 {
		t.Errorf("verification rows = %d, want 26", len(res.Rows))
	}
	out := res.Render()
	if !strings.Contains(out, "max |error|") {
		t.Error("render missing the summary line")
	}
}

func TestFig4RowErrorPct(t *testing.T) {
	if (Fig4Row{Model: 115, Simulated: 100}).ErrorPct() != 15 {
		t.Error("ErrorPct arithmetic wrong")
	}
	if (Fig4Row{Model: 0, Simulated: 0}).ErrorPct() != 0 {
		t.Error("0/0 should be 0")
	}
	if (Fig4Row{Model: 5, Simulated: 0}).ErrorPct() != 100 {
		t.Error("nonzero model with zero simulated should report 100")
	}
}

func TestVerifyKernelSingle(t *testing.T) {
	rows, err := VerifyKernel(kernels.NewVM(1000), cache.Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Model <= 0 || r.Simulated <= 0 {
			t.Errorf("row %+v has non-positive counts", r)
		}
	}
}

// TestFig5Shapes pins the qualitative claims of the paper's Figure 5
// discussion.
func TestFig5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep is slow")
	}
	res, err := RunFig5()
	if err != nil {
		t.Fatal(err)
	}

	lookup := func(kernel, cacheName, structure string) float64 {
		v, err := res.Lookup(kernel, cacheName, structure)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	for _, cfg := range cache.ProfilingConfigs() {
		// "the data structure A has obviously larger DVF than B and C"
		a := lookup("VM", cfg.Name, "A")
		b := lookup("VM", cfg.Name, "B")
		c := lookup("VM", cfg.Name, "C")
		if !(a > b && b > c) {
			t.Errorf("VM on %s: want DVF(A) > DVF(B) > DVF(C), got %g %g %g",
				cfg.Name, a, b, c)
		}
		// "the DVF for our CG implementation can be thousands of times
		// larger than that for the FT implementation"
		cg := lookup("CG", cfg.Name, "DVF_a")
		ft := lookup("FT", cfg.Name, "DVF_a")
		if cg < 100*ft {
			t.Errorf("CG on %s: DVF_a %g not >> FT %g", cfg.Name, cg, ft)
		}
		// "the DVF for MC is much larger than that for NB"
		mc := lookup("MC", cfg.Name, "DVF_a")
		nb := lookup("NB", cfg.Name, "DVF_a")
		if mc < 2*nb {
			t.Errorf("MC on %s: DVF_a %g not much larger than NB %g", cfg.Name, mc, nb)
		}
	}

	// "DVF values for the FT algorithm increase suddenly when the cache
	// capacity is smaller than a threshold (16KB)".
	ft16 := lookup("FT", cache.Profile16KB.Name, "DVF_a")
	ft128 := lookup("FT", cache.Profile128KB.Name, "DVF_a")
	if ft16 < 10*ft128 {
		t.Errorf("FT: no sudden jump below 32KB working set: 16KB=%g 128KB=%g", ft16, ft128)
	}
	// Streaming VM stays comparatively stable across caches (no jump).
	vm16 := lookup("VM", cache.Profile16KB.Name, "DVF_a")
	vm8m := lookup("VM", cache.Profile8MB.Name, "DVF_a")
	if vm16 > 100*vm8m {
		t.Errorf("VM: streaming DVF should not jump: 16KB=%g 8MB=%g", vm16, vm8m)
	}
	// Random-pattern MC declines gradually, not suddenly: each step of the
	// cache sweep changes DVF by less than the FT jump.
	mcPrev := lookup("MC", cache.Profile16KB.Name, "DVF_a")
	for _, cfg := range cache.ProfilingConfigs()[1:3] {
		cur := lookup("MC", cfg.Name, "DVF_a")
		if mcPrev/cur > 100 {
			t.Errorf("MC: DVF drop from %g to %g looks like a cliff", mcPrev, cur)
		}
		mcPrev = cur
	}
}

func TestProfileKernelReport(t *testing.T) {
	app, err := ProfileKernel(kernels.NewVM(1000), cache.Small, dvf.FITNoECC, dvf.DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Structures) != 3 || app.Total() <= 0 {
		t.Errorf("profile: %+v", app)
	}
	if app.ExecHours <= 0 {
		t.Error("cost model produced non-positive time")
	}
}

// TestFig6Crossover pins the Section V-A claims: PCG is slightly more
// vulnerable at small sizes and clearly better at large ones.
func TestFig6Crossover(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence sweep is slow")
	}
	res, err := RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("points = %d, want 8", len(res.Points))
	}
	first := res.Points[0]
	if first.PCGDVF <= first.CGDVF {
		t.Errorf("n=100: PCG (%g) should be more vulnerable than CG (%g)",
			first.PCGDVF, first.CGDVF)
	}
	// "pretty close" at the small sizes: within a small factor.
	if first.PCGDVF > 3*first.CGDVF {
		t.Errorf("n=100: PCG %g vs CG %g not 'pretty close'", first.PCGDVF, first.CGDVF)
	}
	last := res.Points[len(res.Points)-1]
	if last.PCGDVF >= last.CGDVF {
		t.Errorf("n=800: PCG (%g) should beat CG (%g)", last.PCGDVF, last.CGDVF)
	}
	x := res.CrossoverSize()
	if x < 200 || x > 500 {
		t.Errorf("crossover at n=%d, want within [200, 500]", x)
	}
	// CG's iterations grow with n; PCG's stay roughly flat.
	if res.Points[7].CGIters <= res.Points[0].CGIters {
		t.Error("CG iterations did not grow with n")
	}
	if res.Points[7].PCGIters > 2*res.Points[0].PCGIters {
		t.Error("PCG iterations should stay roughly constant")
	}
	if !strings.Contains(res.Render(), "PCG becomes less vulnerable") {
		t.Error("render missing crossover line")
	}
}

// TestFig7ECC pins the Section V-B claims: protection slashes DVF, the
// minimum sits at ~5% degradation, and further loss raises vulnerability.
func TestFig7ECC(t *testing.T) {
	res, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want SECDED and chipkill", len(res.Series))
	}
	for _, s := range res.Series {
		best, err := dvf.MinPoint(s.Points)
		if err != nil {
			t.Fatal(err)
		}
		if best.DegradationPct != 5 {
			t.Errorf("%s: minimum at %g%%, want 5%%", s.Mechanism.Name, best.DegradationPct)
		}
		if best.DVF >= s.Points[0].DVF {
			t.Errorf("%s: protection did not decrease DVF", s.Mechanism.Name)
		}
		lastIdx := len(s.Points) - 1
		if s.Points[lastIdx].DVF <= best.DVF {
			t.Errorf("%s: DVF should rise past the minimum", s.Mechanism.Name)
		}
	}
	// Chipkill dominates SECDED everywhere past engagement.
	sec, chip := res.Series[0], res.Series[1]
	for i := 5; i < len(sec.Points); i++ {
		if chip.Points[i].DVF >= sec.Points[i].DVF {
			t.Errorf("at %g%%: chipkill %g not below SECDED %g",
				sec.Points[i].DegradationPct, chip.Points[i].DVF, sec.Points[i].DVF)
		}
	}
	if !strings.Contains(res.Render(), "minimum DVF") {
		t.Error("render missing minima")
	}
}

func TestTableVInputs(t *testing.T) {
	rows := TableV()
	suite := kernels.VerificationSuite()
	if len(rows) != len(suite) {
		t.Fatalf("Table V rows %d != suite size %d", len(rows), len(suite))
	}
	for i, r := range rows {
		if suite[i].Name() != r.Kernel {
			t.Errorf("row %d: kernel %s != suite %s", i, r.Kernel, suite[i].Name())
		}
	}
}

func TestTableVIInputs(t *testing.T) {
	rows := TableVI()
	suite := kernels.ProfilingSuite()
	if len(rows) != len(suite) {
		t.Fatalf("Table VI rows %d != suite size %d", len(rows), len(suite))
	}
	for i, r := range rows {
		if suite[i].Name() != r.Kernel {
			t.Errorf("row %d: kernel %s != suite %s", i, r.Kernel, suite[i].Name())
		}
	}
	// Profiling sizes dominate verification sizes where the paper says so.
	tv := TableV()
	for i := range rows {
		if rows[i].Kernel == "FT" {
			continue // FT uses class S in both tables
		}
		if rows[i].Value <= tv[i].Value {
			t.Errorf("%s: profiling size %d not larger than verification %d",
				rows[i].Kernel, rows[i].Value, tv[i].Value)
		}
	}
}

func TestFig5LookupError(t *testing.T) {
	res := &Fig5Result{}
	if _, err := res.Lookup("VM", "x", "A"); err == nil {
		t.Error("lookup on empty result succeeded")
	}
}

func TestFig6SizesAxis(t *testing.T) {
	sizes := Fig6Sizes()
	if len(sizes) != 8 || sizes[0] != 100 || sizes[7] != 800 {
		t.Errorf("Fig6 axis = %v", sizes)
	}
}

func TestFig7DegradationAxis(t *testing.T) {
	d := Fig7Degradations()
	if len(d) != 31 || d[0] != 0 || d[30] != 30 {
		t.Errorf("Fig7 axis = %v", d)
	}
}

func TestFig5RenderContainsAllKernels(t *testing.T) {
	res := &Fig5Result{Rate: dvf.FITNoECC, Cells: []Fig5Cell{
		{Kernel: "VM", Cache: "16KB", Structure: "A", DVF: 1e-5},
		{Kernel: "FT", Cache: "8MB", Structure: "DVF_a", DVF: 2e-8},
	}}
	out := res.Render()
	for _, want := range []string{"Figure 5", "VM", "FT", "DVF_a"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestBaselineCostRatioZeroGuard(t *testing.T) {
	cmp := &BaselineComparison{DVFSeconds: 0, InjectSeconds: 5}
	if cmp.CostRatio() != 0 {
		t.Error("zero model time should report 0 rather than dividing")
	}
}
