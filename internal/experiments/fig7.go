package experiments

import (
	"fmt"
	"strings"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/tracez"
)

// Fig7Series is one ECC mechanism's DVF-vs-degradation curve of Figure 7.
type Fig7Series struct {
	Mechanism dvf.ECC
	Points    []dvf.SweepPoint
}

// Fig7Result is the hardware-protection use case of Section V-B.
type Fig7Result struct {
	Kernel string
	Cache  cache.Config
	Series []Fig7Series
}

// Fig7Degradations returns the paper's 0-30% sweep axis.
func Fig7Degradations() []float64 {
	var d []float64
	for pct := 0.0; pct <= 30; pct++ {
		d = append(d, pct)
	}
	return d
}

// RunFig7 reproduces the ECC trade-off: the vector-multiplication kernel's
// application DVF is swept over performance degradations for SECDED and
// chipkill protection, on the largest Table IV cache (as the paper
// specifies for Section V).
//
// Unlike Figures 4-6 this experiment is purely analytical — one untraced
// kernel run feeds two closed-form sweeps — so there is no reference
// stream to shard and no fan-out to bound; the drivers' -workers flag does
// not apply here.
func RunFig7() (*Fig7Result, error) { return RunFig7Sink(nil) }

// RunFig7Sink is RunFig7 with a metrics sink timing the single untraced
// kernel run ("experiments.kernel_run_ns") and the analytical sweep
// ("experiments.task_ns"). The series are identical with or without a sink.
func RunFig7Sink(ms metrics.Sink) (*Fig7Result, error) {
	return RunFig7Obs(ms, nil)
}

// RunFig7Obs is RunFig7Sink with a timeline recorder: the single "fig7"
// track carries spans for the untraced kernel run, the DVF aggregation
// and one "dvf.sweep" span per ECC mechanism. The series are
// byte-identical with or without a recorder.
func RunFig7Obs(ms metrics.Sink, tz tracez.Recorder) (*Fig7Result, error) {
	cfg := cache.Profile8MB
	k := kernels.NewVM(100000)
	tk := tz.Track("fig7")
	sw := ms.Timer("experiments.kernel_run_ns").Start()
	sp := tk.Begin("run")
	info, err := k.Run(nil)
	sw.Stop()
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.EndInt("refs", info.Refs)
	app, err := profileFromInfoObs(k, info, cfg, dvf.FITNoECC, dvf.DefaultCostModel, tk)
	if err != nil {
		return nil, err
	}
	// The whole application's exposure: working set bytes and total N_ha.
	var totalBytes int64
	var totalNHa float64
	for _, s := range app.Structures {
		totalBytes += s.Bytes
		totalNHa += s.NHa
	}
	res := &Fig7Result{Kernel: k.Name(), Cache: cfg}
	for _, mech := range []dvf.ECC{dvf.SECDED, dvf.Chipkill} {
		sw := ms.Timer("experiments.task_ns").Start()
		points, err := mech.SweepObs(app.ExecHours, totalBytes, totalNHa, Fig7Degradations(), tk)
		sw.Stop()
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Fig7Series{Mechanism: mech, Points: points})
	}
	return res, nil
}

// Render formats the two Figure 7 curves.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: impact of ECC on DVF (%s, cache %s)\n", r.Kernel, r.Cache.Name)
	fmt.Fprintf(&b, "%12s", "degr%")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %18s", s.Mechanism.Name)
	}
	fmt.Fprintln(&b)
	for i := range r.Series[0].Points {
		fmt.Fprintf(&b, "%12.0f", r.Series[0].Points[i].DegradationPct)
		for _, s := range r.Series {
			fmt.Fprintf(&b, " %18.6g", s.Points[i].DVF)
		}
		fmt.Fprintln(&b)
	}
	for _, s := range r.Series {
		if best, err := dvf.MinPoint(s.Points); err == nil {
			fmt.Fprintf(&b, "%s: minimum DVF %.6g at %.0f%% degradation\n",
				s.Mechanism.Name, best.DVF, best.DegradationPct)
		}
	}
	return b.String()
}
