package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/resilience-models/dvf/internal/cache"
)

// TestStoreModelsWithin15Percent extends the Figure 4 verification to the
// write side: modeled writebacks track the simulator within the paper's
// load-side bound for the kernels with uniform write patterns.
func TestStoreModelsWithin15Percent(t *testing.T) {
	for _, k := range StoreModelers() {
		for _, cfg := range cache.VerificationConfigs() {
			rows, err := VerifyStores(k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if e := math.Abs(r.ErrorPct()); e > 15 {
					t.Errorf("%s/%s on %s: writeback error %.1f%% (model %.0f, sim %.0f)",
						r.Kernel, r.Structure, r.Cache, e, r.Model, r.Simulated)
				}
			}
		}
	}
}

func TestStoreReadOnlyStructuresZero(t *testing.T) {
	vm := StoreModelers()[0]
	rows, err := VerifyStores(vm, cache.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Structure == "A" || r.Structure == "B" {
			if r.Model != 0 || r.Simulated != 0 {
				t.Errorf("read-only %s: model %g sim %g, want 0/0", r.Structure, r.Model, r.Simulated)
			}
		}
	}
}

func TestStoreResidentWorkingSetZero(t *testing.T) {
	// On the 4MB cache everything stays resident: no writebacks at all.
	for _, k := range StoreModelers() {
		rows, err := VerifyStores(k, cache.Large)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Model != 0 || r.Simulated != 0 {
				t.Errorf("%s/%s on large cache: model %g sim %g, want 0/0",
					r.Kernel, r.Structure, r.Model, r.Simulated)
			}
		}
	}
}

func TestRenderStoreRows(t *testing.T) {
	rows := []StoreRow{{Kernel: "VM", Cache: "Small", Structure: "C", Model: 213, Simulated: 213}}
	out := RenderStoreRows(rows)
	if !strings.Contains(out, "writebacks") || !strings.Contains(out, "C") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestStoreRowErrorPct(t *testing.T) {
	if (StoreRow{Model: 0.5, Simulated: 0.2}).ErrorPct() != 0 {
		t.Error("sub-unit counts should compare as zero")
	}
	if (StoreRow{Model: 50, Simulated: 0}).ErrorPct() != 100 {
		t.Error("spurious model writebacks should report 100%")
	}
	if (StoreRow{Model: 110, Simulated: 100}).ErrorPct() != 10 {
		t.Error("plain relative error wrong")
	}
}
