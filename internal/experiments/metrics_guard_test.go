package experiments

import (
	"bytes"
	"io"
	"testing"

	"github.com/resilience-models/dvf/internal/metrics"
)

// csvWriter is the common shape of every figure result.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

// These tests guard the zero-interference contract of the metrics sink:
// instrumenting a figure sweep must never change its scientific output.
// Each figure's CSV is rendered twice — once through the plain entry
// point (nil sink) and once with a live registry threaded through every
// hot path — and the two byte streams must be identical, while the live
// run must actually have recorded something.

func csvFig(t *testing.T, run func() (csvWriter, error)) []byte {
	t.Helper()
	res, err := run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func requireLive(t *testing.T, s metrics.Sink) {
	t.Helper()
	snap := s.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) == 0 {
		t.Fatal("live sink recorded no instruments; the sweep is not instrumented")
	}
}

func TestFig7CSVUnchangedByMetrics(t *testing.T) {
	off := csvFig(t, func() (csvWriter, error) {
		return RunFig7()
	})
	ms := metrics.New()
	on := csvFig(t, func() (csvWriter, error) {
		return RunFig7Sink(ms)
	})
	if !bytes.Equal(off, on) {
		t.Error("Fig7 CSV differs with metrics enabled")
	}
	requireLive(t, ms)
}

func TestFig6CSVUnchangedByMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence sweep is slow")
	}
	off := csvFig(t, func() (csvWriter, error) {
		return RunFig6Workers(1)
	})
	ms := metrics.New()
	on := csvFig(t, func() (csvWriter, error) {
		return RunFig6Sink(1, ms)
	})
	if !bytes.Equal(off, on) {
		t.Error("Fig6 CSV differs with metrics enabled")
	}
	requireLive(t, ms)
}

func TestFig5CSVUnchangedByMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep is slow")
	}
	if raceEnabled {
		t.Skip("byte-identity is schedule-agnostic; race runs cover the instruments elsewhere")
	}
	off := csvFig(t, func() (csvWriter, error) {
		return RunFig5Workers(1)
	})
	ms := metrics.New()
	on := csvFig(t, func() (csvWriter, error) {
		return RunFig5Sink(1, ms)
	})
	if !bytes.Equal(off, on) {
		t.Error("Fig5 CSV differs with metrics enabled")
	}
	requireLive(t, ms)
}

func TestFig4CSVUnchangedByMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification sweep is slow")
	}
	if raceEnabled {
		t.Skip("byte-identity is schedule-agnostic; race runs cover the instruments elsewhere")
	}
	off := csvFig(t, func() (csvWriter, error) {
		return RunFig4Workers(1)
	})
	ms := metrics.New()
	on := csvFig(t, func() (csvWriter, error) {
		return RunFig4Sink(1, ms)
	})
	if !bytes.Equal(off, on) {
		t.Error("Fig4 CSV differs with metrics enabled")
	}
	requireLive(t, ms)
}
