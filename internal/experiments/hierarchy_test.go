package experiments

import (
	"math"
	"testing"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/trace"
)

// TestLLCOnlyAssumptionOnKernels validates the paper's Section II choice
// to model only the last-level cache, on the actual Table II workloads:
// the main-memory loads seen by a multi-level hierarchy stay close to a
// standalone LLC simulation for every verification kernel.
func TestLLCOnlyAssumptionOnKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("full traces are slow")
	}
	// A small L1 in front of the 8 KB verification LLC (8:1 ratio).
	l1 := cache.Config{Name: "l1", Associativity: 2, Sets: 32, LineSize: 16}
	for _, k := range kernels.VerificationSuite() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			h, err := cache.NewHierarchy(l1, cache.Small)
			if err != nil {
				t.Fatal(err)
			}
			alone, err := cache.NewSimulator(cache.Small)
			if err != nil {
				t.Fatal(err)
			}
			sink := trace.ConsumerFunc(func(r trace.Ref, owner int32) {
				h.Access(r.Addr, r.Size, r.Write, cache.StructID(owner))
				alone.Access(r.Addr, r.Size, r.Write, cache.StructID(owner))
			})
			if _, err := k.Run(sink); err != nil {
				t.Fatal(err)
			}
			full := float64(h.LastLevel().TotalStats().Misses)
			ref := float64(alone.TotalStats().Misses)
			if ref == 0 {
				t.Fatal("no misses recorded")
			}
			gap := math.Abs(full-ref) / ref
			if gap > 0.12 {
				t.Errorf("%s: hierarchy LLC misses %g vs standalone %g (%.1f%% apart)",
					k.Name(), full, ref, gap*100)
			}
		})
	}
}
