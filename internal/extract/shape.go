package extract

import (
	"go/token"

	"github.com/resilience-models/dvf/internal/analytic"
)

// Shape matchers: pattern-match a symbolically executed loop nest into
// one analytic phase. Matchers are pure structural checks over the nest
// tree — exact bound forms, exact coefficient vectors, exact event
// order — so a match is a proof that the loop performs the canonical
// access pattern the phase models. Anything that deviates falls through
// to the next matcher and ultimately to rejection (or concrete
// unrolling at the call site).

func (i *interp) matchNest(root *nest) ([]analytic.Phase, *blockInfo) {
	if p, ok := matchStream(root); ok {
		return []analytic.Phase{p}, nil
	}
	if p, ok := matchMatVec(root); ok {
		return []analytic.Phase{p}, nil
	}
	if p, ok := matchSmooth(root); ok {
		return []analytic.Phase{p}, nil
	}
	if p, ok := matchRestrict(root); ok {
		return []analytic.Phase{p}, nil
	}
	if p, ok := matchProlong(root); ok {
		return []analytic.Phase{p}, nil
	}
	if p, ok := matchBitReverse(root); ok {
		return []analytic.Phase{p}, nil
	}
	if p, ok := matchButterflies(root); ok {
		return []analytic.Phase{p}, nil
	}
	return nil, &blockInfo{pos: root.pos, reason: "affine nest does not match any recognized access shape (stream, matvec, smooth, restrict, prolong, bit-reversal, butterflies)"}
}

// termsWithin reports whether every symbol of a is one of syms.
func termsWithin(a aff, syms ...*nsym) bool {
	for _, t := range a.terms {
		found := false
		for _, s := range syms {
			if t.sym == s {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// unitUp reports a canonical ascending unit-stride header
// `for s := lo; s < hi; s++` with the given constant bounds.
func unitUp(n *nest, lo, hi int64) bool {
	return n.cmp == token.LSS && n.stepOp == token.ADD &&
		n.lo.isConst() && n.lo.c == lo &&
		n.hi.isConst() && n.hi.c == hi &&
		n.step.isConst() && n.step.c == 1
}

// unitUpConst is unitUp with any constant bound; it returns the bound.
func unitUpConst(n *nest, lo int64) (int64, bool) {
	if n.cmp == token.LSS && n.stepOp == token.ADD &&
		n.lo.isConst() && n.lo.c == lo &&
		n.hi.isConst() &&
		n.step.isConst() && n.step.c == 1 {
		return n.hi.c, true
	}
	return 0, false
}

func allUnguardedEvents(n *nest) ([]*nEvent, bool) {
	evs := n.directEvents()
	if len(evs) != len(n.items) {
		return nil, false
	}
	for _, ev := range evs {
		if ev.guard != nil {
			return nil, false
		}
	}
	return evs, true
}

// matchStream recognizes a depth-1 loop whose every access is a
// constant-stride traversal c·s + d with c > 0. Repeated accesses to
// the same (region, form) collapse into one traversal, preserving
// first-access order.
func matchStream(n *nest) (analytic.Phase, bool) {
	if len(n.derived) != 0 {
		return nil, false
	}
	evs, ok := allUnguardedEvents(n)
	if !ok || len(evs) == 0 {
		return nil, false
	}
	if n.stepOp != token.ADD || !n.step.isConst() || n.step.c <= 0 || n.cmp != token.LSS {
		return nil, false
	}
	trip, ok := n.trip()
	if !ok {
		return nil, false
	}
	type form struct {
		reg  *regionInfo
		c, d int64
	}
	seen := make(map[form]bool)
	var streams []analytic.Traversal
	for _, ev := range evs {
		if !termsWithin(ev.idx, n.sym) {
			return nil, false
		}
		c := ev.idx.coefOf(n.sym)
		if c <= 0 {
			return nil, false
		}
		start := c*n.lo.c + ev.idx.c
		if start < 0 {
			return nil, false
		}
		f := form{ev.region, c, ev.idx.c}
		if seen[f] {
			continue
		}
		seen[f] = true
		streams = append(streams, analytic.Traversal{
			Region:      ev.region.name,
			StartElem:   int(start),
			StrideElems: int(c * n.step.c),
			Count:       int(trip),
		})
	}
	return analytic.Stream{Streams: streams}, true
}

// matchMatVec recognizes a dense square matrix-vector product:
//
//	for i := 0; i < N; i++ {
//	    for j := 0; j < N; j++ { read M[i*N+j]; read V[j] }
//	    write Out[i]
//	}
func matchMatVec(n *nest) (analytic.Phase, bool) {
	if len(n.derived) != 0 || len(n.items) != 2 {
		return nil, false
	}
	jn := n.items[0].sub
	wr := n.items[1].ev
	if jn == nil || wr == nil || wr.guard != nil || len(jn.derived) != 0 {
		return nil, false
	}
	size, ok := unitUpConst(n, 0)
	if !ok || size <= 0 || !unitUp(jn, 0, size) {
		return nil, false
	}
	evs, ok := allUnguardedEvents(jn)
	if !ok || len(evs) != 2 {
		return nil, false
	}
	m, v := evs[0], evs[1]
	if m.write || v.write || !wr.write {
		return nil, false
	}
	if m.region == v.region {
		return nil, false
	}
	if !termsWithin(m.idx, n.sym, jn.sym) || m.idx.c != 0 ||
		m.idx.coefOf(n.sym) != size || m.idx.coefOf(jn.sym) != 1 {
		return nil, false
	}
	if !termsWithin(v.idx, jn.sym) || v.idx.c != 0 || v.idx.coefOf(jn.sym) != 1 {
		return nil, false
	}
	if !termsWithin(wr.idx, n.sym) || wr.idx.c != 0 || wr.idx.coefOf(n.sym) != 1 {
		return nil, false
	}
	return analytic.MatVec{Matrix: m.region.name, Vec: v.region.name, Out: wr.region.name, N: int(size)}, true
}

// matchSmooth recognizes a 7-point-style interior sweep over one cube
// of an n³ grid at a constant element offset: a triple nest i,j over
// [1,n-1), k over [0,n), reading the four j/i neighbors and writing the
// center.
func matchSmooth(root *nest) (analytic.Phase, bool) {
	jn := root.onlySub()
	if jn == nil {
		return nil, false
	}
	kn := jn.onlySub()
	if kn == nil {
		return nil, false
	}
	if len(root.derived) != 0 || len(jn.derived) != 0 || len(kn.derived) != 0 {
		return nil, false
	}
	dim, ok := unitUpConst(kn, 0)
	if !ok || dim < 3 {
		return nil, false
	}
	if !unitUp(root, 1, dim-1) || !unitUp(jn, 1, dim-1) {
		return nil, false
	}
	evs, ok := allUnguardedEvents(kn)
	if !ok || len(evs) != 5 {
		return nil, false
	}
	reg := evs[0].region
	for _, ev := range evs {
		if ev.region != reg ||
			!termsWithin(ev.idx, root.sym, jn.sym, kn.sym) ||
			ev.idx.coefOf(root.sym) != dim*dim ||
			ev.idx.coefOf(jn.sym) != dim ||
			ev.idx.coefOf(kn.sym) != 1 {
			return nil, false
		}
	}
	off := evs[4].idx.c
	wantConst := []int64{off - dim, off + dim, off - dim*dim, off + dim*dim, off}
	wantWrite := []bool{false, false, false, false, true}
	for k, ev := range evs {
		if ev.idx.c != wantConst[k] || ev.write != wantWrite[k] {
			return nil, false
		}
	}
	return analytic.Smooth{Region: reg.name, Dim: int(dim), OffsetElems: int(off)}, true
}

// fineStencil checks the 2:1 fine-grid access of restriction and
// prolongation: idx = offF + Σ (2·c + dc)·stride over the three axes.
func fineStencil(ev *nEvent, cs, ds [3]*nsym, nf int64) (offF int64, ok bool) {
	if !termsWithin(ev.idx, cs[0], cs[1], cs[2], ds[0], ds[1], ds[2]) {
		return 0, false
	}
	strides := [3]int64{nf * nf, nf, 1}
	for a := 0; a < 3; a++ {
		if ev.idx.coefOf(cs[a]) != 2*strides[a] || ev.idx.coefOf(ds[a]) != strides[a] {
			return 0, false
		}
	}
	return ev.idx.c, true
}

// coarseCell checks the coarse-grid access idx = offC + (i·nc + j)·nc + k.
func coarseCell(ev *nEvent, cs [3]*nsym, nc int64) (offC int64, ok bool) {
	if !termsWithin(ev.idx, cs[0], cs[1], cs[2]) ||
		ev.idx.coefOf(cs[0]) != nc*nc ||
		ev.idx.coefOf(cs[1]) != nc ||
		ev.idx.coefOf(cs[2]) != 1 {
		return 0, false
	}
	return ev.idx.c, true
}

// coarseTriple validates the outer i,j,k nest over [0,nc) of the
// inter-grid transfers and returns its symbols and innermost nest.
func coarseTriple(root *nest) (cs [3]*nsym, kn *nest, nc int64, ok bool) {
	jn := root.onlySub()
	if jn == nil {
		return cs, nil, 0, false
	}
	kn = jn.onlySub()
	if kn == nil {
		return cs, nil, 0, false
	}
	if len(root.derived) != 0 || len(jn.derived) != 0 || len(kn.derived) != 0 {
		return cs, nil, 0, false
	}
	nc, ok = unitUpConst(root, 0)
	if !ok || nc <= 0 || !unitUp(jn, 0, nc) || !unitUp(kn, 0, nc) {
		return cs, nil, 0, false
	}
	return [3]*nsym{root.sym, jn.sym, kn.sym}, kn, nc, true
}

// deltaTriple validates the di,dj,dk nest over [0,2) and returns its
// symbols and innermost nest.
func deltaTriple(dn *nest) (ds [3]*nsym, inner *nest, ok bool) {
	djn := dn.onlySub()
	if djn == nil {
		return ds, nil, false
	}
	dkn := djn.onlySub()
	if dkn == nil {
		return ds, nil, false
	}
	if len(dn.derived) != 0 || len(djn.derived) != 0 || len(dkn.derived) != 0 {
		return ds, nil, false
	}
	if !unitUp(dn, 0, 2) || !unitUp(djn, 0, 2) || !unitUp(dkn, 0, 2) {
		return ds, nil, false
	}
	return [3]*nsym{dn.sym, djn.sym, dkn.sym}, dkn, true
}

// matchRestrict recognizes full-weighted 2:1 restriction: per coarse
// cell, read the 2×2×2 fine block and write the coarse cell, both in
// the same region at different offsets.
func matchRestrict(root *nest) (analytic.Phase, bool) {
	cs, kn, nc, ok := coarseTriple(root)
	if !ok || len(kn.items) != 2 {
		return nil, false
	}
	dn := kn.items[0].sub
	wr := kn.items[1].ev
	if dn == nil || wr == nil || wr.guard != nil || !wr.write {
		return nil, false
	}
	ds, dkn, ok := deltaTriple(dn)
	if !ok {
		return nil, false
	}
	evs, ok := allUnguardedEvents(dkn)
	if !ok || len(evs) != 1 || evs[0].write {
		return nil, false
	}
	nf := 2 * nc
	offF, ok := fineStencil(evs[0], cs, ds, nf)
	if !ok {
		return nil, false
	}
	offC, ok := coarseCell(wr, cs, nc)
	if !ok || evs[0].region != wr.region {
		return nil, false
	}
	return analytic.Restrict{Region: wr.region.name, FineDim: int(nf), CoarseDim: int(nc), FineOffset: int(offF), CoarseOffs: int(offC)}, true
}

// matchProlong recognizes 2:1 prolongation: per coarse cell, read the
// coarse value, then read-modify-write each cell of the 2×2×2 fine
// block.
func matchProlong(root *nest) (analytic.Phase, bool) {
	cs, kn, nc, ok := coarseTriple(root)
	if !ok || len(kn.items) != 2 {
		return nil, false
	}
	rd := kn.items[0].ev
	dn := kn.items[1].sub
	if rd == nil || dn == nil || rd.guard != nil || rd.write {
		return nil, false
	}
	ds, dkn, ok := deltaTriple(dn)
	if !ok {
		return nil, false
	}
	evs, ok := allUnguardedEvents(dkn)
	if !ok || len(evs) != 2 || evs[0].write || !evs[1].write {
		return nil, false
	}
	if !evs[0].idx.equal(evs[1].idx) || evs[0].region != evs[1].region {
		return nil, false
	}
	nf := 2 * nc
	offF, ok := fineStencil(evs[0], cs, ds, nf)
	if !ok {
		return nil, false
	}
	offC, ok := coarseCell(rd, cs, nc)
	if !ok || rd.region != evs[0].region {
		return nil, false
	}
	return analytic.Prolong{Region: rd.region.name, FineDim: int(nf), CoarseDim: int(nc), FineOffset: int(offF), CoarseOffs: int(offC)}, true
}

// matchBitReverse recognizes the FFT's bit-reversal permutation: a
// unit-stride sweep of i over [0,n) with derived j = bitrev(i) and an
// `if i < j` guarded four-access swap.
func matchBitReverse(n *nest) (analytic.Phase, bool) {
	size, ok := unitUpConst(n, 0)
	if !ok || size < 4 {
		return nil, false
	}
	if len(n.derived) != 1 {
		return nil, false
	}
	j := n.derived[0]
	if j.bitrevOf != n.sym || j.bitrevBits <= 0 || j.bitrevBits >= 63 || int64(1)<<j.bitrevBits != size {
		return nil, false
	}
	evs := n.directEvents()
	if len(evs) != 4 || len(n.items) != 4 {
		return nil, false
	}
	reg := evs[0].region
	wantSym := []*nsym{n.sym, j, n.sym, j}
	wantWrite := []bool{false, false, true, true}
	for k, ev := range evs {
		if ev.region != reg || ev.write != wantWrite[k] {
			return nil, false
		}
		s, ok := ev.idx.singleSym()
		if !ok || s != wantSym[k] {
			return nil, false
		}
		g := ev.guard
		if g == nil || g.op != token.LSS {
			return nil, false
		}
		gl, okL := g.lhs.singleSym()
		gr, okR := g.rhs.singleSym()
		if !okL || !okR || gl != n.sym || gr != j {
			return nil, false
		}
	}
	return analytic.BitReverse{Region: reg.name, N: int(size)}, true
}

// matchButterflies recognizes the radix-2 butterfly passes: size
// doubles from 2 to n, half = size/2, start strides by size, j sweeps
// [0,half), touching X[start+j] and X[start+j+half] twice each.
func matchButterflies(root *nest) (analytic.Phase, bool) {
	if root.cmp != token.LEQ || root.stepOp != token.MUL ||
		!root.lo.isConst() || root.lo.c != 2 ||
		!root.step.isConst() || root.step.c != 2 ||
		!root.hi.isConst() {
		return nil, false
	}
	size := root.hi.c
	if size < 4 || size&(size-1) != 0 {
		return nil, false
	}
	if len(root.derived) != 1 {
		return nil, false
	}
	half := root.derived[0]
	if half.halfOf != root.sym {
		return nil, false
	}
	sn := root.onlySub()
	if sn == nil || len(sn.derived) != 0 {
		return nil, false
	}
	if sn.cmp != token.LSS || sn.stepOp != token.ADD ||
		!sn.lo.isConst() || sn.lo.c != 0 ||
		!sn.hi.isConst() || sn.hi.c != size {
		return nil, false
	}
	if s, ok := sn.step.singleSym(); !ok || s != root.sym {
		return nil, false
	}
	jn := sn.onlySub()
	if jn == nil || len(jn.derived) != 0 {
		return nil, false
	}
	if jn.cmp != token.LSS || jn.stepOp != token.ADD ||
		!jn.lo.isConst() || jn.lo.c != 0 ||
		!jn.step.isConst() || jn.step.c != 1 {
		return nil, false
	}
	if s, ok := jn.hi.singleSym(); !ok || s != half {
		return nil, false
	}
	evs, ok := allUnguardedEvents(jn)
	if !ok || len(evs) != 4 {
		return nil, false
	}
	reg := evs[0].region
	wantWrite := []bool{false, false, true, true}
	wantHalf := []int64{0, 1, 0, 1}
	for k, ev := range evs {
		if ev.region != reg || ev.write != wantWrite[k] || ev.idx.c != 0 {
			return nil, false
		}
		if !termsWithin(ev.idx, sn.sym, jn.sym, half) ||
			ev.idx.coefOf(sn.sym) != 1 ||
			ev.idx.coefOf(jn.sym) != 1 ||
			ev.idx.coefOf(half) != wantHalf[k] {
			return nil, false
		}
	}
	return analytic.Butterflies{Region: reg.name, N: int(size)}, true
}
