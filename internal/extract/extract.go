// Package extract statically recovers analytic access-pattern
// descriptors from traced kernel source code.
//
// It is a partial evaluator over the Go AST (via internal/analysis):
// kernel configuration is bound to concrete values, straight-line code
// and untraced loops are evaluated or soundly skipped, and every
// trace-bearing loop nest is executed symbolically — one symbol per
// induction variable, memory accesses recorded as affine forms — then
// pattern-matched into analytic phases (stream, matvec, smooth,
// restrict, prolong, bit-reversal, butterflies).
//
// The soundness contract: extraction either produces a descriptor that
// provably reflects the code's access sequence, or fails with a
// diagnostic naming the first construct (file:line) that is not
// statically extractable — data-dependent subscripts or branches,
// non-canonical loop headers, aliasing writes, escaping trace handles.
// Nothing is silently approximated.
package extract

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"github.com/resilience-models/dvf/internal/analysis"
	"github.com/resilience-models/dvf/internal/analytic"
)

// Target names one extraction: a method on a kernel struct, plus the
// concrete configuration to bind to the receiver's fields.
type Target struct {
	Kernel   string // descriptor kernel name, e.g. "vm"
	Path     string // import path of the package holding the type
	TypeName string // receiver type name, e.g. "VM"
	Method   string // method to extract; defaults to "Run"
	Ints     map[string]int64
	Floats   map[string]float64
	Bools    map[string]bool
}

// Inextractable reports whether err is a soundness rejection produced by
// Extract (as opposed to a lookup or configuration failure).
func Inextractable(err error) bool {
	_, ok := err.(*inextractableError)
	return ok
}

// Extract runs the static extractor for one target and returns the
// validated descriptor.
func Extract(prog *analysis.Program, t Target) (*analytic.Descriptor, error) {
	if t.Kernel == "" {
		return nil, fmt.Errorf("extract: target must name its kernel")
	}
	method := t.Method
	if method == "" {
		method = "Run"
	}
	pkg := prog.Package(t.Path)
	if pkg == nil {
		return nil, fmt.Errorf("extract: package %s is not loaded", t.Path)
	}
	named, st, err := lookupStruct(pkg, t.TypeName)
	if err != nil {
		return nil, err
	}
	fn, err := lookupMethod(named, method)
	if err != nil {
		return nil, err
	}
	i := newInterp(prog)
	node := i.cg.Node(fn)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return nil, fmt.Errorf("extract: no source for %s.%s", t.TypeName, method)
	}
	i.fr = newFrame(nil, node.Pkg, false)
	recv, err := buildReceiver(st, t)
	if err != nil {
		return nil, err
	}
	if err := bindSignature(i, node.Decl, node.Pkg, recv); err != nil {
		return nil, err
	}
	c, err := i.execBlock(node.Decl.Body.List)
	if err != nil {
		return nil, exportErr(err)
	}
	if c != ctrlReturn {
		return nil, fmt.Errorf("extract: %s.%s fell off the end without returning", t.TypeName, method)
	}
	// The soundness contract includes completion: the extracted phases
	// describe the run only if the modeled path provably returns nil
	// error. Any statically unresolved error result is a rejection.
	if n := len(i.retVals); n > 0 {
		if _, ok := i.retVals[n-1].(nilVal); !ok {
			if sig, okSig := fn.Type().(*types.Signature); okSig && sig.Results().Len() > 0 {
				last := sig.Results().At(sig.Results().Len() - 1).Type()
				if isErrorType(last) {
					return nil, exportErr(i.inext(node.Decl.Pos(), "cannot prove error-free completion of %s.%s", t.TypeName, method))
				}
			}
		}
	}
	return assemble(i, t)
}

func isErrorType(t types.Type) bool {
	it, ok := t.Underlying().(*types.Interface)
	return ok && it.NumMethods() == 1 && it.Method(0).Name() == "Error"
}

func exportErr(err error) error {
	switch e := err.(type) {
	case *fatalError:
		return e.err
	case *evalError:
		return fmt.Errorf("extract: internal evaluation failure: %s", e.reason)
	}
	return err
}

func lookupStruct(pkg *analysis.Package, name string) (*types.Named, *types.Struct, error) {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil, nil, fmt.Errorf("extract: %s has no type %s", pkg.Path, name)
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil, fmt.Errorf("extract: %s.%s is not a type", pkg.Path, name)
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, nil, fmt.Errorf("extract: %s.%s is not a named type", pkg.Path, name)
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil, fmt.Errorf("extract: %s.%s is not a struct type", pkg.Path, name)
	}
	return named, st, nil
}

func lookupMethod(named *types.Named, method string) (*types.Func, error) {
	for m := 0; m < named.NumMethods(); m++ {
		if named.Method(m).Name() == method {
			return named.Method(m), nil
		}
	}
	return nil, fmt.Errorf("extract: type %s has no method %s", named.Obj().Name(), method)
}

// buildReceiver constructs the kernel struct with the target's
// configuration bound to its fields and zero values elsewhere, and
// rejects configuration keys that name no field.
func buildReceiver(st *types.Struct, t Target) (value, error) {
	fields := make(map[string]bool)
	sv := &structVal{fields: make(map[string]*cell)}
	for f := 0; f < st.NumFields(); f++ {
		name := st.Field(f).Name()
		fields[name] = true
		sv.fields[name] = &cell{v: zeroValue(st.Field(f).Type())}
	}
	bind := func(name string, v value) error {
		if !fields[name] {
			return fmt.Errorf("extract: %s has no field %s", t.TypeName, name)
		}
		sv.fields[name] = &cell{v: v}
		return nil
	}
	for _, name := range sortedKeys(t.Ints) {
		if err := bind(name, intVal(t.Ints[name])); err != nil {
			return nil, err
		}
	}
	for _, name := range sortedKeys(t.Floats) {
		if err := bind(name, floatVal(t.Floats[name])); err != nil {
			return nil, err
		}
	}
	for _, name := range sortedKeys(t.Bools) {
		if err := bind(name, boolVal(t.Bools[name])); err != nil {
			return nil, err
		}
	}
	return ptrVal{to: sv}, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// bindSignature binds the receiver, parameters (interfaces such as the
// trace sink become nil handles; everything else is opaque), and named
// results of the extracted method.
func bindSignature(i *interp, decl *ast.FuncDecl, pkg *analysis.Package, recv value) error {
	if decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
		if obj := pkg.Info.Defs[decl.Recv.List[0].Names[0]]; obj != nil {
			i.fr.define(obj, recv)
		}
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Interface); ok {
				i.fr.define(obj, nilVal{})
			} else {
				i.fr.define(obj, opaque{})
			}
		}
	}
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					i.fr.define(obj, zeroValue(obj.Type()))
				}
			}
		}
	}
	return nil
}

// assemble builds and validates the final descriptor from the
// interpreter's region table and phase program.
func assemble(i *interp, t Target) (*analytic.Descriptor, error) {
	if len(i.regions) == 0 {
		return nil, i.inext(0, "%s allocated no trace regions", t.Kernel)
	}
	regions := make([]analytic.Region, len(i.regions))
	for k, ri := range i.regions {
		elem := 8 // regions never accessed default to float64 width
		switch len(ri.sizes) {
		case 0:
		case 1:
			for s := range ri.sizes {
				elem = int(s)
			}
		default:
			return nil, fmt.Errorf("extract: region %s is accessed at mixed element sizes", ri.name)
		}
		regions[k] = analytic.Region{Name: ri.name, Bytes: ri.bytes, ElemSize: elem}
	}
	d := &analytic.Descriptor{Kernel: t.Kernel, Regions: regions, Phases: *i.phases}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("extract: descriptor for %s failed validation: %w", t.Kernel, err)
	}
	return d, nil
}
