package extract

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"github.com/resilience-models/dvf/internal/analysis"
	"github.com/resilience-models/dvf/internal/analytic"
)

// Execution budgets. The global budget is a runaway backstop; the attempt
// budget bounds each optimistic concrete unroll of an untraced loop or
// call before the interpreter falls back to skip-and-havoc.
const (
	globalFuel  = 20_000_000
	attemptFuel = 50_000
	maxUnroll   = 1 << 16
	maxDepth    = 64
)

// directivePrefix marks an audited data-dependent branch the extractor may
// treat as never taken: `//dvf:extract assume-false <reason>` on the line
// of (or directly above) an if statement whose condition is not static.
const directivePrefix = "//dvf:extract assume-false"

// ctrl is the non-local control outcome of a statement.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// fatalError wraps an inextractable condition that optimistic attempts
// must not swallow (the soundness backstops).
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }

// interp is the partial evaluator. One instance performs one extraction.
type interp struct {
	prog *analysis.Program
	fset *token.FileSet
	cg   *analysis.CallGraph

	// regions accumulates trace.Registry allocations in program order.
	regions []*regionInfo
	// phases is the current phase sink; loop unrolling swaps it to capture
	// per-iteration groups.
	phases *[]analytic.Phase

	fr  *frame  // current environment
	sym *symCtx // non-nil while building a symbolic nest

	// retVals carries the values of the pending ctrlReturn.
	retVals []value

	steps   int64
	attempt *attemptCtx // non-nil inside an optimistic concrete attempt
	depth   int

	bearingMemo  map[*types.Func]int // 0 unknown/visiting, 1 bearing, 2 not
	elemOnlyMemo map[*types.Func]int
	directives   map[*ast.File]map[int]string // line -> reason
}

type attemptCtx struct {
	fuel int
	pure bool // events and allocations are fatal in pure attempts
}

func newInterp(prog *analysis.Program) *interp {
	root := []analytic.Phase{}
	return &interp{
		prog:         prog,
		fset:         prog.Fset,
		cg:           prog.CallGraph(),
		phases:       &root,
		bearingMemo:  make(map[*types.Func]int),
		elemOnlyMemo: make(map[*types.Func]int),
		directives:   make(map[*ast.File]map[int]string),
	}
}

func (i *interp) pkg() *analysis.Package { return i.fr.pkg }

func (i *interp) info() *types.Info { return i.fr.pkg.Info }

// inext builds the precise rejection the soundness contract promises.
func (i *interp) inext(pos token.Pos, format string, args ...interface{}) error {
	return &inextractableError{pos: i.fset.Position(pos), reason: fmt.Sprintf(format, args...)}
}

func evalFail(pos token.Pos, format string, args ...interface{}) error {
	return &evalError{pos: pos, reason: fmt.Sprintf(format, args...)}
}

// step charges one unit of fuel.
func (i *interp) step(pos token.Pos) error {
	i.steps++
	if i.steps > globalFuel {
		return &fatalError{err: i.inext(pos, "execution budget exhausted (%d steps)", int64(globalFuel))}
	}
	if i.attempt != nil {
		i.attempt.fuel--
		if i.attempt.fuel < 0 {
			return evalFail(pos, "attempt budget exhausted")
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Trace-bearing classification

// eventPrimitive names the trace-package functions whose execution emits
// reference events or mutates the extractor's region state.
func eventPrimitive(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/trace") {
		return false
	}
	switch fn.Name() {
	case "Load", "Store", "LoadN", "StoreN", "Alloc":
		return true
	}
	return false
}

func tracePkgFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/trace")
}

// funcBearing reports whether fn can reach an event primitive.
func (i *interp) funcBearing(fn *types.Func) bool {
	if eventPrimitive(fn) {
		return true
	}
	switch i.bearingMemo[fn] {
	case 1:
		return true
	case 2:
		return false
	}
	node := i.cg.Node(fn)
	if node == nil {
		return false // stdlib / trace accessors without a loaded body
	}
	i.bearingMemo[fn] = 0
	res := 2
	if len(node.Indirect) > 0 {
		res = 1 // an unresolvable call could reach anything
	} else {
		for _, out := range node.Out {
			if i.funcBearing(out.Callee) {
				res = 1
				break
			}
		}
	}
	i.bearingMemo[fn] = res
	return res == 1
}

// nodeBearing reports whether the subtree contains a call that may emit
// events (directly, through module-local callees, or indirectly).
func (i *interp) nodeBearing(root ast.Node) bool {
	info := i.info()
	bearing := false
	ast.Inspect(root, func(n ast.Node) bool {
		if bearing {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isConversion(info, call) || builtinOf(info, call) != nil {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil {
			bearing = true // indirect call: assume the worst
			return false
		}
		if eventPrimitive(fn) || (i.cg.Node(fn) != nil && i.funcBearing(fn)) {
			bearing = true
			return false
		}
		return true
	})
	return bearing
}

// ---------------------------------------------------------------------------
// elemOnly: functions whose only side effects are writes to their own
// locals and to elements of float64/complex128 slices (untracked bulk
// data). Skipping a call to such a function cannot desynchronize the
// interpreter's concrete state.

func (i *interp) elemOnly(fn *types.Func) bool {
	switch i.elemOnlyMemo[fn] {
	case 1:
		return true
	case 2:
		return false
	}
	node := i.cg.Node(fn)
	if node == nil || i.funcBearing(fn) {
		return false
	}
	i.elemOnlyMemo[fn] = 1 // optimistic on cycles
	ok := i.elemOnlyDecl(node)
	if ok {
		i.elemOnlyMemo[fn] = 1
	} else {
		i.elemOnlyMemo[fn] = 2
	}
	return ok
}

func (i *interp) elemOnlyDecl(node *analysis.FuncNode) bool {
	info := node.Pkg.Info
	decl := node.Decl
	localTarget := func(e ast.Expr) bool {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			if t.Name == "_" {
				return true
			}
			obj := info.Defs[t]
			if obj == nil {
				obj = info.Uses[t]
			}
			return obj != nil && obj.Pos() >= decl.Pos() && obj.Pos() <= decl.End()
		case *ast.IndexExpr:
			tv, ok := info.Types[t.X]
			if !ok {
				return false
			}
			sl, ok := tv.Type.Underlying().(*types.Slice)
			if !ok {
				return false
			}
			b, ok := sl.Elem().Underlying().(*types.Basic)
			return ok && (b.Kind() == types.Float64 || b.Kind() == types.Complex128)
		}
		return false
	}
	ok := true
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !localTarget(lhs) {
					ok = false
				}
			}
		case *ast.IncDecStmt:
			if !localTarget(n.X) {
				ok = false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, lit := ast.Unparen(n.X).(*ast.CompositeLit); !lit {
					ok = false
				}
			}
		case *ast.GoStmt, *ast.DeferStmt, *ast.SelectStmt, *ast.FuncLit:
			ok = false
		case *ast.CallExpr:
			if isConversion(info, call(n)) {
				return true
			}
			if b := builtinOf(info, call(n)); b != nil {
				if b.Name() == "panic" {
					ok = false
				}
				return true
			}
			fn := analysis.CalleeFunc(info, call(n))
			if fn == nil {
				ok = false
				return false
			}
			if i.cg.Node(fn) != nil {
				if !i.elemOnly(fn) {
					ok = false
				}
				return true
			}
			if !sideEffectFreePkg(fn.Pkg()) {
				ok = false
			}
		}
		return true
	})
	return ok
}

func call(n ast.Node) *ast.CallExpr { return n.(*ast.CallExpr) }

// sideEffectFreePkg lists the stdlib packages the skip analysis assumes
// cannot write through their arguments into interpreter-tracked state.
func sideEffectFreePkg(p *types.Package) bool {
	if p == nil {
		return true // builtins like error.Error
	}
	switch p.Path() {
	case "math", "math/bits", "math/cmplx", "fmt", "errors", "strconv", "sort", "strings":
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// havoc: conservatively invalidate everything a skipped subtree may write.

func (i *interp) havocNode(root ast.Node) error {
	var failed error
	ast.Inspect(root, func(n ast.Node) bool {
		if failed != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if err := i.havocTarget(lhs); err != nil {
					failed = err
				}
			}
		case *ast.IncDecStmt:
			if err := i.havocTarget(n.X); err != nil {
				failed = err
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, lit := ast.Unparen(n.X).(*ast.CompositeLit); !lit {
					if err := i.havocTarget(n.X); err != nil {
						failed = err
					}
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					if err := i.havocTarget(n.Key); err != nil {
						failed = err
					}
				}
				if n.Value != nil {
					if err := i.havocTarget(n.Value); err != nil {
						failed = err
					}
				}
			}
		case *ast.ReturnStmt:
			failed = i.inext(n.Pos(), "cannot skip untraced code containing a return statement")
		case *ast.BranchStmt:
			if n.Label != nil {
				failed = i.inext(n.Pos(), "cannot skip untraced code containing a labeled branch")
			}
		case *ast.GoStmt, *ast.DeferStmt, *ast.SelectStmt:
			failed = i.inext(n.Pos(), "cannot skip untraced code containing concurrency or defer")
		case *ast.CallExpr:
			if isConversion(i.info(), n) || builtinOf(i.info(), n) != nil {
				return true
			}
			fn := analysis.CalleeFunc(i.info(), n)
			if fn == nil {
				failed = i.inext(n.Pos(), "cannot skip untraced code containing an indirect call")
				return false
			}
			if i.cg.Node(fn) != nil && !i.elemOnly(fn) {
				failed = i.inext(n.Pos(), "cannot skip untraced call to %s: it may write non-local state", fn.Name())
				return false
			}
			if i.cg.Node(fn) == nil && !tracePkgFunc(fn) && !sideEffectFreePkg(fn.Pkg()) {
				failed = i.inext(n.Pos(), "cannot skip untraced call into package %s", fn.Pkg().Path())
				return false
			}
		}
		return true
	})
	return failed
}

// havocTarget invalidates the storage a single assignment target names.
// Writes whose root resolves to bulk numeric data are no-ops (the domain
// never reads such elements concretely); anything else havocs the root
// binding.
func (i *interp) havocTarget(e ast.Expr) error {
	e = ast.Unparen(e)
	switch t := e.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return nil
		}
		obj := i.info().Uses[t]
		if obj == nil {
			obj = i.info().Defs[t]
		}
		if obj == nil {
			return i.inext(t.Pos(), "cannot resolve assignment target %s in skipped code", t.Name)
		}
		if c, _ := i.fr.lookup(obj); c != nil {
			c.v = opaque{}
		}
		return nil // declared inside the skipped region: dies with it
	case *ast.IndexExpr:
		return i.havocChain(t.X, t.Pos())
	case *ast.SelectorExpr:
		return i.havocChain(t, t.Pos())
	case *ast.StarExpr:
		return i.havocChain(t.X, t.Pos())
	}
	return i.inext(e.Pos(), "cannot model assignment target in skipped code")
}

// havocChain resolves a base expression as far as concrete navigation
// allows; if it lands on bulk data the write is a no-op, otherwise the
// outermost resolvable binding is invalidated.
func (i *interp) havocChain(e ast.Expr, pos token.Pos) error {
	// Try a cheap concrete resolution of the base chain.
	if v, err := i.resolveQuiet(e); err == nil {
		switch v.(type) {
		case dataSlice:
			return nil
		}
	}
	// Fall back: havoc the root identifier binding.
	root := e
	for {
		switch t := ast.Unparen(root).(type) {
		case *ast.IndexExpr:
			root = t.X
		case *ast.SelectorExpr:
			root = t.X
		case *ast.StarExpr:
			root = t.X
		case *ast.Ident:
			return i.havocTarget(t)
		default:
			return i.inext(pos, "cannot model assignment target in skipped code")
		}
	}
}

// resolveQuiet evaluates a base expression without charging attempt fuel
// and without side effects (identifier/field/index navigation only).
func (i *interp) resolveQuiet(e ast.Expr) (value, error) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := i.info().Uses[t]
		if obj == nil {
			obj = i.info().Defs[t]
		}
		if obj == nil {
			return nil, evalFail(t.Pos(), "unresolved")
		}
		if c, _ := i.fr.lookup(obj); c != nil {
			return c.v, nil
		}
		return nil, evalFail(t.Pos(), "unbound")
	case *ast.SelectorExpr:
		base, err := i.resolveQuiet(t.X)
		if err != nil {
			return nil, err
		}
		if p, ok := base.(ptrVal); ok {
			base = p.to
		}
		if s, ok := base.(*structVal); ok {
			if c, ok := s.fields[t.Sel.Name]; ok {
				return c.v, nil
			}
		}
		return nil, evalFail(t.Pos(), "unresolvable selector")
	case *ast.IndexExpr:
		base, err := i.resolveQuiet(t.X)
		if err != nil {
			return nil, err
		}
		return base, nil // only used to detect dataSlice bases
	}
	return nil, evalFail(e.Pos(), "unresolvable")
}

// ---------------------------------------------------------------------------
// Statements

func (i *interp) execBlock(stmts []ast.Stmt) (ctrl, error) {
	for _, s := range stmts {
		c, err := i.execStmt(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (i *interp) execStmt(s ast.Stmt) (ctrl, error) {
	if err := i.step(s.Pos()); err != nil {
		return ctrlNone, err
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		_, err := i.evalExpr(s.X)
		return ctrlNone, err
	case *ast.AssignStmt:
		return ctrlNone, i.execAssign(s)
	case *ast.IncDecStmt:
		op := token.ADD
		if s.Tok == token.DEC {
			op = token.SUB
		}
		cur, err := i.evalExpr(s.X)
		if err != nil {
			return ctrlNone, err
		}
		nv, err := i.binop(s.Pos(), op, cur, intVal(1))
		if err != nil {
			return ctrlNone, err
		}
		return ctrlNone, i.assignTo(s.X, nv)
	case *ast.DeclStmt:
		return ctrlNone, i.execDecl(s)
	case *ast.IfStmt:
		return i.execIf(s)
	case *ast.ForStmt:
		return i.execFor(s)
	case *ast.RangeStmt:
		return i.execRange(s)
	case *ast.ReturnStmt:
		return i.execReturn(s)
	case *ast.BranchStmt:
		if s.Label != nil {
			return ctrlNone, i.inext(s.Pos(), "labeled %s", s.Tok)
		}
		switch s.Tok {
		case token.BREAK:
			return ctrlBreak, nil
		case token.CONTINUE:
			return ctrlContinue, nil
		}
		return ctrlNone, i.inext(s.Pos(), "%s statement", s.Tok)
	case *ast.BlockStmt:
		return i.execBlock(s.List)
	case *ast.EmptyStmt:
		return ctrlNone, nil
	}
	return ctrlNone, i.inext(s.Pos(), "unsupported statement %T", s)
}

func (i *interp) execAssign(s *ast.AssignStmt) error {
	switch s.Tok {
	case token.DEFINE:
		if i.sym != nil {
			return i.symDefine(s)
		}
		return i.execDefine(s)
	case token.ASSIGN:
		vals, err := i.evalRHS(s)
		if err != nil {
			return err
		}
		for k, lhs := range s.Lhs {
			if err := i.assignTo(lhs, vals[k]); err != nil {
				return err
			}
		}
		return nil
	default: // op-assign
		op, ok := opAssignToken(s.Tok)
		if !ok {
			return i.inext(s.Pos(), "unsupported assignment operator %s", s.Tok)
		}
		cur, err := i.evalExpr(s.Lhs[0])
		if err != nil {
			return err
		}
		rhs, err := i.evalExpr(s.Rhs[0])
		if err != nil {
			return err
		}
		nv, err := i.binop(s.Pos(), op, cur, rhs)
		if err != nil {
			return err
		}
		return i.assignTo(s.Lhs[0], nv)
	}
}

func opAssignToken(t token.Token) (token.Token, bool) {
	switch t {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.AND_ASSIGN:
		return token.AND, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.XOR_ASSIGN:
		return token.XOR, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	}
	return token.ILLEGAL, false
}

// evalRHS evaluates the right side of a (possibly tuple) assignment.
func (i *interp) evalRHS(s *ast.AssignStmt) ([]value, error) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		v, err := i.evalExpr(s.Rhs[0])
		if err != nil {
			return nil, err
		}
		t, ok := v.(tupleVal)
		if !ok || len(t.vs) != len(s.Lhs) {
			return nil, evalFail(s.Pos(), "tuple assignment from non-tuple value")
		}
		return t.vs, nil
	}
	vals := make([]value, len(s.Rhs))
	for k, rhs := range s.Rhs {
		v, err := i.evalExpr(rhs)
		if err != nil {
			return nil, err
		}
		vals[k] = v
	}
	return vals, nil
}

func (i *interp) execDefine(s *ast.AssignStmt) error {
	vals, err := i.evalRHS(s)
	if err != nil {
		return err
	}
	for k, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return i.inext(lhs.Pos(), "non-identifier in short declaration")
		}
		if id.Name == "_" {
			continue
		}
		obj := i.info().Defs[id]
		if obj == nil {
			// Redeclaration in a := with mixed new/old variables.
			if err := i.assignTo(id, vals[k]); err != nil {
				return err
			}
			continue
		}
		i.fr.define(obj, vals[k])
	}
	return nil
}

func (i *interp) execDecl(s *ast.DeclStmt) error {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return i.inext(s.Pos(), "unsupported declaration")
	}
	if gd.Tok == token.CONST || gd.Tok == token.TYPE {
		return nil // constants resolve through go/types at use sites
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for k, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			obj := i.info().Defs[name]
			if obj == nil {
				continue
			}
			var v value
			if k < len(vs.Values) {
				ev, err := i.evalExpr(vs.Values[k])
				if err != nil {
					return err
				}
				v = ev
			} else {
				v = zeroValue(obj.Type())
			}
			i.fr.define(obj, v)
		}
	}
	return nil
}

func (i *interp) execIf(s *ast.IfStmt) (ctrl, error) {
	if i.sym != nil {
		return i.symIf(s)
	}
	if s.Init != nil {
		if c, err := i.execStmt(s.Init); err != nil || c != ctrlNone {
			return c, err
		}
	}
	cond, err := i.evalExpr(s.Cond)
	if err != nil {
		if _, ok := err.(*evalError); ok {
			return i.ifNotStatic(s)
		}
		return ctrlNone, err
	}
	if b, ok := truthy(cond); ok {
		if b {
			return i.execBlock(s.Body.List)
		}
		if s.Else != nil {
			return i.execStmt(s.Else)
		}
		return ctrlNone, nil
	}
	return i.ifNotStatic(s)
}

// ifNotStatic handles an if whose condition has no static truth value: an
// audited assume-false directive skips it, anything else is the exact
// rejection the soundness contract requires.
func (i *interp) ifNotStatic(s *ast.IfStmt) (ctrl, error) {
	if reason, ok := i.assumeFalse(s.Pos()); ok {
		if reason == "" {
			return ctrlNone, i.inext(s.Pos(), "%s directive requires a reason", directivePrefix)
		}
		if s.Else != nil {
			return ctrlNone, i.inext(s.Pos(), "assume-false directive cannot skip an if with an else branch")
		}
		return ctrlNone, nil
	}
	return ctrlNone, i.inext(s.Cond.Pos(), "branch condition is data-dependent (not statically evaluable)")
}

// assumeFalse reports whether an assume-false directive covers the given
// position (same line or the line directly above).
func (i *interp) assumeFalse(pos token.Pos) (string, bool) {
	file := i.fileOf(pos)
	if file == nil {
		return "", false
	}
	lines, ok := i.directives[file]
	if !ok {
		lines = make(map[int]string)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, directivePrefix) {
					lines[i.fset.Position(c.Pos()).Line] = strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				}
			}
		}
		i.directives[file] = lines
	}
	line := i.fset.Position(pos).Line
	if r, ok := lines[line]; ok {
		return r, true
	}
	if r, ok := lines[line-1]; ok {
		return r, true
	}
	return "", false
}

func (i *interp) fileOf(pos token.Pos) *ast.File {
	for _, f := range i.pkg().Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

func (i *interp) execReturn(s *ast.ReturnStmt) (ctrl, error) {
	if i.sym != nil && i.depth == i.sym.depth {
		// A return at the nest's own level exits the loop mid-stream;
		// returns inside symbolically inlined callees are fine.
		return ctrlNone, i.symBlockedErr(s.Pos(), "return statement inside the loop body")
	}
	vals := make([]value, len(s.Results))
	for k, res := range s.Results {
		if i.nodeBearing(res) {
			v, err := i.evalExpr(res)
			if err != nil {
				return ctrlNone, err
			}
			vals[k] = v
		} else {
			// Untraced result: degrade to opaque when it has no static
			// value. The expression cannot emit events, so nothing is lost.
			v, err := i.evalExpr(res)
			if err != nil {
				if f, fatal := err.(*fatalError); fatal {
					return ctrlNone, f
				}
				v = opaque{}
			}
			vals[k] = v
		}
	}
	// A single multi-value call (`return f()`) spreads into the result
	// list, exactly as in the language.
	if len(vals) == 1 {
		if tup, ok := vals[0].(tupleVal); ok {
			vals = tup.vs
		}
	}
	i.retVals = vals
	return ctrlReturn, nil
}

// ---------------------------------------------------------------------------
// Loops

func (i *interp) execFor(fs *ast.ForStmt) (ctrl, error) {
	if i.sym != nil {
		return ctrlNone, i.symFor(fs)
	}
	if !i.nodeBearing(fs) {
		if err := i.tryAttempt(func() error {
			c, err := i.runForConcrete(fs, nil)
			if err == nil && c == ctrlReturn {
				err = evalFail(fs.Pos(), "return inside untraced loop")
			}
			return err
		}); err == nil {
			return ctrlNone, nil
		} else if f, fatal := err.(*fatalError); fatal {
			return ctrlNone, f
		}
		return ctrlNone, i.havocNode(fs)
	}
	// Trace-bearing: first try to recognize the loop as an affine nest.
	phases, blocked := i.tryNest(fs)
	if blocked == nil {
		*i.phases = append(*i.phases, phases...)
		return ctrlNone, nil
	}
	// Fall back to concrete unrolling with per-iteration phase capture.
	c, err := i.runForConcrete(fs, blocked)
	return c, err
}

// tryAttempt runs fn under a fresh bounded attempt context; any
// non-fatal failure is returned for the caller's fallback path.
func (i *interp) tryAttempt(fn func() error) error {
	saved := i.attempt
	i.attempt = &attemptCtx{fuel: attemptFuel, pure: true}
	err := fn()
	i.attempt = saved
	return err
}

// runForConcrete executes a general for statement with concrete
// conditions. For trace-bearing loops (blocked != nil context) each
// iteration's phases are captured and the loop is collapsed to a Repeat
// when every iteration produced the same phase sequence.
func (i *interp) runForConcrete(fs *ast.ForStmt, blocked *blockInfo) (ctrl, error) {
	bearing := blocked != nil
	if bearing {
		// Events emitted by the condition or post statement would land in
		// whichever iteration's capture group happens to be active.
		if fs.Cond != nil && i.nodeBearing(fs.Cond) {
			return ctrlNone, i.inext(fs.Cond.Pos(), "traced memory access in loop condition")
		}
		if fs.Post != nil && i.nodeBearing(fs.Post) {
			return ctrlNone, i.inext(fs.Post.Pos(), "traced memory access in loop post statement")
		}
	}
	if fs.Init != nil {
		if c, err := i.execStmt(fs.Init); err != nil || c != ctrlNone {
			return c, err
		}
	}
	var groups [][]analytic.Phase
	outerPhases := i.phases
	finish := func() {
		i.phases = outerPhases
		*i.phases = append(*i.phases, collapseGroups(groups)...)
	}
	for iter := 0; ; iter++ {
		if iter > maxUnroll {
			i.phases = outerPhases
			return ctrlNone, i.loopFailure(fs, blocked, nil,
				fmt.Sprintf("loop exceeds %d unrolled iterations", maxUnroll))
		}
		if fs.Cond != nil {
			cond, err := i.evalExpr(fs.Cond)
			if err != nil || !isBool(cond) {
				i.phases = outerPhases
				return ctrlNone, i.loopFailure(fs, blocked, err, "loop bound is not statically known")
			}
			if b, _ := truthy(cond); !b {
				break
			}
		}
		if bearing {
			captured := []analytic.Phase{}
			i.phases = &captured
		}
		c, err := i.execBlock(fs.Body.List)
		if bearing {
			groups = append(groups, *i.phases)
		}
		if err != nil {
			i.phases = outerPhases
			return ctrlNone, i.loopFailure(fs, blocked, err, "loop body is not statically executable")
		}
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			if bearing {
				finish()
			}
			return ctrlReturn, nil
		}
		if fs.Post != nil {
			if _, err := i.execStmt(fs.Post); err != nil {
				i.phases = outerPhases
				return ctrlNone, i.loopFailure(fs, blocked, err, "loop post statement is not statically executable")
			}
		}
	}
	if bearing {
		finish()
	}
	return ctrlNone, nil
}

// loopFailure merges the nest-rejection diagnostic (the more precise
// explanation of why the loop is not affine) with the unroll failure.
func (i *interp) loopFailure(fs *ast.ForStmt, blocked *blockInfo, cause error, what string) error {
	if cause != nil {
		if f, ok := cause.(*fatalError); ok {
			return f
		}
		if _, ok := cause.(*inextractableError); ok {
			return cause
		}
	}
	if blocked == nil {
		// Untraced attempt context: recoverable.
		if cause != nil {
			return cause
		}
		return evalFail(fs.Pos(), "%s", what)
	}
	msg := fmt.Sprintf("%s; loop is not a recognizable affine nest: %s (at %s)",
		what, blocked.reason, i.fset.Position(blocked.pos))
	if cause != nil {
		if ee, ok := cause.(*evalError); ok {
			msg = fmt.Sprintf("%s: %s", msg, ee.reason)
		}
	}
	return i.inext(fs.Pos(), "%s", msg)
}

func isBool(v value) bool { _, ok := v.(boolVal); return ok }

// collapseGroups folds per-iteration phase groups: equal groups become
// one Repeat, a single iteration inlines, mixed iterations concatenate.
func collapseGroups(groups [][]analytic.Phase) []analytic.Phase {
	switch len(groups) {
	case 0:
		return nil
	case 1:
		return groups[0]
	}
	same := true
	for _, g := range groups[1:] {
		if !reflect.DeepEqual(g, groups[0]) {
			same = false
			break
		}
	}
	if same {
		if len(groups[0]) == 0 {
			return nil
		}
		return []analytic.Phase{analytic.Repeat{Count: len(groups), Body: groups[0]}}
	}
	var out []analytic.Phase
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func (i *interp) execRange(rs *ast.RangeStmt) (ctrl, error) {
	if i.sym != nil {
		return ctrlNone, i.symBlockedErr(rs.Pos(), "range loop inside an affine nest")
	}
	if !i.nodeBearing(rs) {
		if err := i.tryAttempt(func() error {
			c, err := i.runRangeConcrete(rs)
			if err == nil && c == ctrlReturn {
				err = evalFail(rs.Pos(), "return inside untraced loop")
			}
			return err
		}); err == nil {
			return ctrlNone, nil
		} else if f, fatal := err.(*fatalError); fatal {
			return ctrlNone, f
		}
		return ctrlNone, i.havocNode(rs)
	}
	return i.runRangeConcrete(rs)
}

// runRangeConcrete unrolls a range statement over a concretely sized
// iterable (slice values, bulk data, integer ranges).
func (i *interp) runRangeConcrete(rs *ast.RangeStmt) (ctrl, error) {
	x, err := i.evalExpr(rs.X)
	if err != nil {
		return ctrlNone, err
	}
	var n int64
	elemAt := func(k int64) value { return opaque{} }
	switch xv := x.(type) {
	case dataSlice:
		n = xv.n
	case sliceVal:
		n = int64(len(xv.elems))
		elemAt = func(k int64) value { return xv.elems[k].v }
	case intVal:
		n = int64(xv)
	case stringVal:
		n = int64(len(string(xv)))
	default:
		return ctrlNone, evalFail(rs.X.Pos(), "range over value with no static length")
	}
	bind := func(e ast.Expr, v value) error {
		if e == nil {
			return nil
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if ok && id.Name == "_" {
			return nil
		}
		if rs.Tok == token.DEFINE && ok {
			if obj := i.info().Defs[id]; obj != nil {
				i.fr.define(obj, v)
				return nil
			}
		}
		return i.assignTo(e, v)
	}
	for k := int64(0); k < n; k++ {
		if err := i.step(rs.Pos()); err != nil {
			return ctrlNone, err
		}
		if err := bind(rs.Key, intVal(k)); err != nil {
			return ctrlNone, err
		}
		if rs.Value != nil {
			if err := bind(rs.Value, elemAt(k)); err != nil {
				return ctrlNone, err
			}
		}
		c, err := i.execBlock(rs.Body.List)
		if err != nil {
			return ctrlNone, err
		}
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			return ctrlReturn, nil
		}
	}
	return ctrlNone, nil
}
