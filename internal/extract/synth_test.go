package extract_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/resilience-models/dvf/internal/analysis"
	"github.com/resilience-models/dvf/internal/analytic"
	"github.com/resilience-models/dvf/internal/extract"
)

// The synthetic-module harness: each test case is a standalone kernel
// body compiled into a throwaway module with a stub internal/trace
// package. The extractor intercepts trace calls by package-path suffix,
// so the stub exercises exactly the same primitive layer as the real
// repo without depending on it.

const synthTraceStub = `package trace

type Consumer interface {
	Access(addr uint64, size uint32, write bool, region int32)
}

type Region struct {
	ID   int32
	Name string
	Base uint64
	Size uint64
}

type Registry struct{ regions []Region }

func NewRegistry() *Registry { return &Registry{} }

func (g *Registry) Alloc(name string, size uint64) Region {
	r := Region{ID: int32(len(g.regions) + 1), Name: name, Size: size}
	g.regions = append(g.regions, r)
	return r
}

type Memory struct{ refs int64 }

func NewMemory(reg *Registry, sink Consumer) *Memory { return &Memory{} }

func (m *Memory) LoadN(r Region, idx int, elemSize uint32)  { m.refs++ }
func (m *Memory) StoreN(r Region, idx int, elemSize uint32) { m.refs++ }
func (m *Memory) Load(r Region, addr uint64)                { m.refs++ }
func (m *Memory) Store(r Region, addr uint64)               { m.refs++ }
func (m *Memory) Refs() int64                               { return m.refs }
`

// loadSynth writes a module {go.mod, internal/trace stub, kern/kern.go}
// into a temp dir, loads it, and returns the program.
func loadSynth(t *testing.T, kernSrc string) *analysis.Program {
	t.Helper()
	prog, err := loadSynthErr(t, kernSrc)
	if err != nil {
		t.Fatalf("loading synthetic module: %v", err)
	}
	return prog
}

func loadSynthErr(t *testing.T, kernSrc string) (*analysis.Program, error) {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":                  "module synth\n\ngo 1.22\n",
		"internal/trace/trace.go": synthTraceStub,
		"kern/kern.go":            kernSrc,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return nil, err
		}
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	if _, err := loader.Load("synth/kern"); err != nil {
		return nil, err
	}
	return loader.Program(), nil
}

// kernWrap surrounds a Run body with the standard synthetic kernel
// preamble: a K struct with N plus the trace registry and memory.
func kernWrap(fields, body string) string {
	return fmt.Sprintf(`package kern

import "synth/internal/trace"

type K struct {
	N int
%s}

func (k *K) Run() error {
	reg := trace.NewRegistry()
	mem := trace.NewMemory(reg, nil)
	_ = mem
%s	return nil
}
`, fields, body)
}

func synthTarget(ints map[string]int64) extract.Target {
	return extract.Target{
		Kernel:   "synth",
		Path:     "synth/kern",
		TypeName: "K",
		Method:   "Run",
		Ints:     ints,
	}
}

// TestExtractRejections pins the soundness contract: each construct the
// extractor cannot prove affine is rejected with a diagnostic naming it,
// never silently approximated.
func TestExtractRejections(t *testing.T) {
	cases := []struct {
		name   string
		fields string
		n      int64 // kernel size; 0 means 16
		body   string
		want   string // substring of the rejection diagnostic
	}{
		{
			name: "data-dependent subscript",
			body: `	a := reg.Alloc("A", uint64(k.N)*8)
	x := make([]float64, k.N)
	for i := 0; i < k.N; i++ {
		mem.LoadN(a, int(x[i]), 8)
	}
`,
			want: "data-dependent",
		},
		{
			// != comparisons are outside the canonical counted form; with
			// a trip count past the unroll budget the concrete fallback
			// cannot rescue the loop either.
			name: "non-canonical loop header",
			n:    100000,
			body: `	a := reg.Alloc("A", uint64(k.N)*8)
	for i := 0; i != k.N; i++ {
		mem.LoadN(a, i, 8)
	}
`,
			want: "canonical counted form",
		},
		{
			name: "dynamic loop bound",
			body: `	a := reg.Alloc("A", uint64(k.N)*8)
	x := make([]float64, k.N)
	bound := int(x[0])
	for i := 0; i < bound; i++ {
		mem.LoadN(a, i, 8)
	}
`,
			want: "not statically extractable",
		},
		{
			name: "data-dependent early exit",
			body: `	a := reg.Alloc("A", uint64(k.N)*8)
	x := make([]float64, k.N)
	for i := 0; i < k.N; i++ {
		mem.LoadN(a, i, 8)
		if x[i] > 0 {
			return nil
		}
	}
`,
			want: "not statically extractable",
		},
		{
			name: "byte-granular access",
			body: `	a := reg.Alloc("A", uint64(k.N)*8)
	mem.Load(a, 0)
`,
			want: "byte-granular",
		},
		{
			name: "escaping trace handle",
			body: `	a := reg.Alloc("A", uint64(k.N)*8)
	_ = fmt.Sprint(a)
`,
			want: "not statically extractable",
		},
		{
			// Quadratic subscripts are non-affine; past the unroll budget
			// the loop cannot be evaluated concretely either, so the
			// symbolic blocking reason is what surfaces.
			name: "quadratic subscript",
			n:    100000,
			body: `	a := reg.Alloc("A", uint64(k.N)*uint64(k.N)*8)
	for i := 0; i < k.N; i++ {
		mem.LoadN(a, i*i, 8)
	}
`,
			want: "product of two loop-dependent values",
		},
		{
			name: "dynamic allocation size",
			body: `	x := make([]float64, k.N)
	a := reg.Alloc("A", uint64(int(x[0]))*8)
	mem.LoadN(a, 0, 8)
`,
			want: "non-static name or size",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			src := kernWrap(tc.fields, tc.body)
			if strings.Contains(tc.body, "fmt.") {
				src = strings.Replace(src, `import "synth/internal/trace"`,
					"import (\n\t\"fmt\"\n\n\t\"synth/internal/trace\"\n)", 1)
			}
			prog := loadSynth(t, src)
			n := tc.n
			if n == 0 {
				n = 16
			}
			_, err := extract.Extract(prog, synthTarget(map[string]int64{"N": n}))
			if err == nil {
				t.Fatalf("want rejection, got success")
			}
			if !extract.Inextractable(err) {
				t.Fatalf("want soundness rejection, got configuration error: %v", err)
			}
			msg := err.Error()
			if !strings.Contains(msg, tc.want) {
				t.Fatalf("diagnostic %q does not mention %q", msg, tc.want)
			}
			if !strings.Contains(msg, "kern.go:") {
				t.Fatalf("diagnostic %q does not carry a file:line position", msg)
			}
		})
	}
}

// FuzzExtractStreams generates affine stream kernels with fuzzed size,
// strides, start offset and store mix, and checks the extracted
// descriptor against the ground truth computed directly from the same
// parameters.
func FuzzExtractStreams(f *testing.F) {
	f.Add(8, 1, 1, 0, false)
	f.Add(1000, 4, 2, 0, true)
	f.Add(16, 3, 5, 7, true)
	f.Add(1, 8, 1, 32, false)
	f.Add(2048, 2, 7, 1, true)
	f.Fuzz(func(t *testing.T, n, sa, sb, start int, store bool) {
		n = clampInt(n, 1, 2048)
		sa = clampInt(sa, 1, 8)
		sb = clampInt(sb, 1, 8)
		start = clampInt(start, 0, 32)
		op := "LoadN"
		if store {
			op = "StoreN"
		}
		body := fmt.Sprintf(`	a := reg.Alloc("A", uint64(k.N*k.SA+k.Start)*8)
	b := reg.Alloc("B", uint64(k.N*k.SB)*8)
	for i := 0; i < k.N; i++ {
		mem.LoadN(a, i*k.SA+k.Start, 8)
		mem.%s(b, i*k.SB, 8)
	}
`, op)
		prog := loadSynth(t, kernWrap("\tSA, SB, Start int\n", body))
		got, err := extract.Extract(prog, synthTarget(map[string]int64{
			"N": int64(n), "SA": int64(sa), "SB": int64(sb), "Start": int64(start),
		}))
		if err != nil {
			t.Fatalf("extracting affine stream kernel (n=%d sa=%d sb=%d start=%d): %v", n, sa, sb, start, err)
		}
		want := &analytic.Descriptor{
			Kernel: "synth",
			Regions: []analytic.Region{
				{Name: "A", Bytes: int64(n*sa+start) * 8, ElemSize: 8},
				{Name: "B", Bytes: int64(n*sb) * 8, ElemSize: 8},
			},
			Phases: []analytic.Phase{analytic.Stream{Streams: []analytic.Traversal{
				{Region: "A", StartElem: start, StrideElems: sa, Count: n},
				{Region: "B", StrideElems: sb, Count: n},
			}}},
		}
		if d := extract.Diff(got, want); d != "" {
			t.Fatalf("extracted stream differs from ground truth (n=%d sa=%d sb=%d start=%d): %s", n, sa, sb, start, d)
		}
	})
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
