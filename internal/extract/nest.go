package extract

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Symbolic loop nests. When the interpreter reaches a trace-bearing
// for-loop it does not unroll it element by element: it introduces one
// symbol per induction variable, executes the body once symbolically,
// and records every memory access as an event whose index is an affine
// form over the live symbols. The resulting nest tree is what the shape
// matchers in shape.go pattern-match into analytic phases.

// nsym is one loop-nest symbol: an induction variable, or a derived
// integer whose defining expression is not affine (the FFT's bit-reversed
// j, the butterfly half-width). Derived symbols carry the structural
// decorations the matchers need, recognized at creation time.
type nsym struct {
	name string
	id   int
	// halfOf marks a derived symbol defined as `s / 2` of another symbol.
	halfOf *nsym
	// bitrevOf/bitrevBits mark `int(bits.Reverse32(uint32(i)) >> (32-w))`.
	bitrevOf   *nsym
	bitrevBits int
}

// aff is an affine integer form c + Σ coef·sym. Terms are kept sorted by
// symbol id, with no zero coefficients.
type aff struct {
	terms []affTerm
	c     int64
}

type affTerm struct {
	sym  *nsym
	coef int64
}

func affConst(c int64) aff { return aff{c: c} }

func affSym(s *nsym) aff { return aff{terms: []affTerm{{sym: s, coef: 1}}} }

func (a aff) isConst() bool { return len(a.terms) == 0 }

// coefOf returns the coefficient of s (0 when absent).
func (a aff) coefOf(s *nsym) int64 {
	for _, t := range a.terms {
		if t.sym == s {
			return t.coef
		}
	}
	return 0
}

// singleSym returns the sole symbol of a 1-term form with coefficient 1
// and zero constant, the shape of a bare loop-variable reference.
func (a aff) singleSym() (*nsym, bool) {
	if len(a.terms) == 1 && a.terms[0].coef == 1 && a.c == 0 {
		return a.terms[0].sym, true
	}
	return nil, false
}

func (a aff) equal(b aff) bool {
	if a.c != b.c || len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i].sym != b.terms[i].sym || a.terms[i].coef != b.terms[i].coef {
			return false
		}
	}
	return true
}

func (a aff) add(b aff) aff {
	out := aff{c: a.c + b.c}
	i, j := 0, 0
	for i < len(a.terms) || j < len(b.terms) {
		switch {
		case j == len(b.terms) || (i < len(a.terms) && a.terms[i].sym.id < b.terms[j].sym.id):
			out.terms = append(out.terms, a.terms[i])
			i++
		case i == len(a.terms) || b.terms[j].sym.id < a.terms[i].sym.id:
			out.terms = append(out.terms, b.terms[j])
			j++
		default:
			if c := a.terms[i].coef + b.terms[j].coef; c != 0 {
				out.terms = append(out.terms, affTerm{sym: a.terms[i].sym, coef: c})
			}
			i++
			j++
		}
	}
	return out
}

func (a aff) scale(k int64) aff {
	if k == 0 {
		return affConst(0)
	}
	out := aff{c: a.c * k}
	for _, t := range a.terms {
		out.terms = append(out.terms, affTerm{sym: t.sym, coef: t.coef * k})
	}
	return out
}

func (a aff) neg() aff { return a.scale(-1) }

// div divides exactly by k, failing unless every coefficient and the
// constant are divisible (affine division is only sound when exact).
func (a aff) div(k int64) (aff, bool) {
	if k == 0 {
		return aff{}, false
	}
	if a.c%k != 0 {
		return aff{}, false
	}
	out := aff{c: a.c / k}
	for _, t := range a.terms {
		if t.coef%k != 0 {
			return aff{}, false
		}
		out.terms = append(out.terms, affTerm{sym: t.sym, coef: t.coef / k})
	}
	return out, true
}

func (a aff) String() string {
	var parts []string
	for _, t := range a.terms {
		if t.coef == 1 {
			parts = append(parts, t.sym.name)
		} else {
			parts = append(parts, fmt.Sprintf("%d*%s", t.coef, t.sym.name))
		}
	}
	if a.c != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.c))
	}
	return strings.Join(parts, " + ")
}

// syms returns the distinct symbols of the form.
func (a aff) syms() []*nsym {
	out := make([]*nsym, 0, len(a.terms))
	for _, t := range a.terms {
		out = append(out, t.sym)
	}
	return out
}

// nGuard is a single-level comparison guarding events (the bit-reversal
// swap's `if i < j`). Nested or else-carrying guards block the nest.
type nGuard struct {
	lhs aff
	op  token.Token
	rhs aff
}

// nEvent is one memory access recorded during symbolic execution.
type nEvent struct {
	region *regionInfo
	idx    aff
	size   int64
	write  bool
	guard  *nGuard
	pos    token.Pos
}

// nItem is one ordered body element of a nest: an event or a sub-nest.
type nItem struct {
	ev  *nEvent
	sub *nest
}

// nest is one symbolically executed loop with its canonical header and
// ordered body items.
type nest struct {
	pos    token.Pos
	sym    *nsym
	lo, hi aff
	cmp    token.Token // LSS, LEQ, GTR, GEQ
	step   aff         // additive/multiplicative step (1 for ++/--)
	stepOp token.Token // ADD, SUB, MUL
	items  []nItem
	// derived lists the derived symbols defined directly in this body.
	derived []*nsym
	// headerExprs are the source expressions of lo/hi/step for the
	// bound-invariance check against assigned outer objects.
	headerExprs []ast.Expr
}

// events flattens the nest's direct events (not sub-nests).
func (n *nest) directEvents() []*nEvent {
	var out []*nEvent
	for _, it := range n.items {
		if it.ev != nil {
			out = append(out, it.ev)
		}
	}
	return out
}

// onlySub returns the sole item when it is a single sub-nest.
func (n *nest) onlySub() *nest {
	if len(n.items) == 1 && n.items[0].sub != nil {
		return n.items[0].sub
	}
	return nil
}

// trip returns the concrete iteration count of a nest whose bounds and
// step are constant and whose step is additive.
func (n *nest) trip() (int64, bool) {
	if !n.lo.isConst() || !n.hi.isConst() || !n.step.isConst() {
		return 0, false
	}
	lo, hi, step := n.lo.c, n.hi.c, n.step.c
	if step <= 0 {
		return 0, false
	}
	switch {
	case n.stepOp == token.ADD && n.cmp == token.LSS:
		if hi <= lo {
			return 0, false
		}
		return (hi - lo + step - 1) / step, true
	case n.stepOp == token.ADD && n.cmp == token.LEQ:
		if hi < lo {
			return 0, false
		}
		return (hi - lo + step) / step, true
	case n.stepOp == token.SUB && n.cmp == token.GTR:
		if lo <= hi {
			return 0, false
		}
		return (lo - hi + step - 1) / step, true
	case n.stepOp == token.SUB && n.cmp == token.GEQ:
		if lo < hi {
			return 0, false
		}
		return (lo - hi + step) / step, true
	}
	return 0, false
}

// blockInfo pins the first construct that made a nest unmatchable.
type blockInfo struct {
	pos    token.Pos
	reason string
}

// assignedHeaderConflict reports a header expression of any (sub-)nest
// that reads an object the symbolic body assigned: the bounds were
// evaluated once at loop entry, so a body write would make them stale.
func assignedHeaderConflict(info *types.Info, n *nest, assigned map[types.Object]bool) *blockInfo {
	if len(assigned) > 0 {
		for _, e := range n.headerExprs {
			var hit *blockInfo
			ast.Inspect(e, func(node ast.Node) bool {
				if hit != nil {
					return false
				}
				if id, ok := node.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && assigned[obj] {
						hit = &blockInfo{pos: id.Pos(), reason: fmt.Sprintf("loop bound reads %s, which the loop body assigns", id.Name)}
					}
				}
				return true
			})
			if hit != nil {
				return hit
			}
		}
	}
	for _, it := range n.items {
		if it.sub != nil {
			if b := assignedHeaderConflict(info, it.sub, assigned); b != nil {
				return b
			}
		}
	}
	return nil
}

// sortSyms orders symbols deterministically by creation id.
func sortSyms(ss []*nsym) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].id < ss[j].id })
}
