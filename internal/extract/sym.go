package extract

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/resilience-models/dvf/internal/analysis"
	"github.com/resilience-models/dvf/internal/analytic"
)

// symCtx is the state of one symbolic nest-building attempt: the nest
// tree under construction, the active guard, and the record of outer
// state the body tried to write (shadowed, never committed).
type symCtx struct {
	root  *nest
	cur   *nest
	guard *nGuard
	// assigned records objects owned by concrete (outer) frames that the
	// symbolic body wrote. Their writes are shadowed during the attempt
	// and their concrete cells are havocked only on commit.
	assigned map[types.Object]bool
	// rootFrame is the outermost symbolic frame; shadows live here so
	// they survive inner-nest scope pops.
	rootFrame *frame
	nextID    int
	depth     int // i.depth at attempt start: separates body returns from callee returns
	events    int // total events recorded, for eventless-failure checks
}

func (sc *symCtx) newSym(name string) *nsym {
	s := &nsym{name: name, id: sc.nextID}
	sc.nextID++
	return s
}

// symBlocked aborts a nest attempt with the first blocking construct.
type symBlocked struct{ info blockInfo }

func (e *symBlocked) Error() string { return e.info.reason }

func (i *interp) symBlockedErr(pos token.Pos, format string, args ...interface{}) error {
	return &symBlocked{info: blockInfo{pos: pos, reason: fmt.Sprintf(format, args...)}}
}

// tryNest attempts to recognize a trace-bearing for statement as an
// affine loop nest and match it into analytic phases. On failure it
// returns the first blocking construct; concrete interpreter state is
// untouched either way (all writes during the attempt are shadowed).
func (i *interp) tryNest(fs *ast.ForStmt) ([]analytic.Phase, *blockInfo) {
	info := i.info()
	header, ok := analysis.Induction(info, fs)
	if !ok {
		return nil, &blockInfo{pos: fs.Pos(), reason: "loop header is not a canonical counted form"}
	}
	if analysis.AssignsObj(info, fs.Body, header.Var) {
		return nil, &blockInfo{pos: fs.Pos(), reason: fmt.Sprintf("loop body assigns induction variable %s", header.Var.Name())}
	}
	// Outermost bounds must be fully concrete.
	lo, b := i.concreteBound(header.Init, "start")
	if b != nil {
		return nil, b
	}
	hi, b := i.concreteBound(header.Bound, "bound")
	if b != nil {
		return nil, b
	}
	step := int64(1)
	if header.Step != nil {
		if step, b = i.concreteBound(header.Step, "step"); b != nil {
			return nil, b
		}
	}
	savedFr := i.fr
	sym := &symCtx{assigned: make(map[types.Object]bool), depth: i.depth}
	i.sym = sym
	err := i.symNestBody(fs, header, affConst(lo), affConst(hi), affConst(step))
	i.sym = nil
	i.fr = savedFr
	if err != nil {
		return nil, blockedFrom(i, fs, err)
	}
	if b := assignedHeaderConflict(info, sym.root, sym.assigned); b != nil {
		return nil, b
	}
	phases, b := i.matchNest(sym.root)
	if b != nil {
		return nil, b
	}
	// Commit: record observed element sizes and invalidate every outer
	// cell the body wrote (its post-loop value is iteration-dependent).
	recordSizes(sym.root)
	objs := make([]types.Object, 0, len(sym.assigned))
	for obj := range sym.assigned {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(a, b int) bool { return objs[a].Pos() < objs[b].Pos() })
	for _, obj := range objs {
		if c, _ := i.fr.lookup(obj); c != nil {
			c.v = opaque{}
		}
	}
	return phases, nil
}

func recordSizes(n *nest) {
	for _, it := range n.items {
		if it.ev != nil {
			it.ev.region.sizes[it.ev.size] = true
		}
		if it.sub != nil {
			recordSizes(it.sub)
		}
	}
}

// concreteBound evaluates an outer-nest bound expression to a concrete
// integer (nil expressions mean an implicit step of 1).
func (i *interp) concreteBound(e ast.Expr, what string) (int64, *blockInfo) {
	v, err := i.evalExpr(e)
	if err != nil {
		return 0, &blockInfo{pos: e.Pos(), reason: fmt.Sprintf("loop %s is not statically known", what)}
	}
	n, ok := isConcreteInt(v)
	if !ok {
		return 0, &blockInfo{pos: e.Pos(), reason: fmt.Sprintf("loop %s is not statically known", what)}
	}
	return n, nil
}

func blockedFrom(i *interp, fs *ast.ForStmt, err error) *blockInfo {
	switch e := err.(type) {
	case *symBlocked:
		return &e.info
	case *evalError:
		pos := e.pos
		if !pos.IsValid() {
			pos = fs.Pos()
		}
		return &blockInfo{pos: pos, reason: e.reason}
	case *inextractableError:
		return &blockInfo{pos: fs.Pos(), reason: e.reason}
	case *fatalError:
		return &blockInfo{pos: fs.Pos(), reason: e.Error()}
	}
	return &blockInfo{pos: fs.Pos(), reason: err.Error()}
}

// symFor handles a for statement nested inside an active nest attempt.
// Inner bounds may be affine in enclosing symbols (the FFT's start/j
// loops); the header must still be canonical.
func (i *interp) symFor(fs *ast.ForStmt) error {
	info := i.info()
	header, ok := analysis.Induction(info, fs)
	if !ok {
		return i.symBlockedErr(fs.Pos(), "inner loop header is not a canonical counted form")
	}
	if analysis.AssignsObj(info, fs.Body, header.Var) {
		return i.symBlockedErr(fs.Pos(), "inner loop body assigns induction variable %s", header.Var.Name())
	}
	if i.sym.guard != nil {
		return i.symBlockedErr(fs.Pos(), "loop nested inside a guard")
	}
	lo, err := i.symAffExpr(header.Init, "start")
	if err != nil {
		return err
	}
	hi, err := i.symAffExpr(header.Bound, "bound")
	if err != nil {
		return err
	}
	step := affConst(1)
	if header.Step != nil {
		if step, err = i.symAffExpr(header.Step, "step"); err != nil {
			return err
		}
	}
	return i.symNestBody(fs, header, lo, hi, step)
}

func (i *interp) symAffExpr(e ast.Expr, what string) (aff, error) {
	v, err := i.evalExpr(e)
	if err != nil {
		if _, ok := err.(*evalError); ok {
			return aff{}, i.symBlockedErr(e.Pos(), "loop %s is not affine in the enclosing loop indices", what)
		}
		return aff{}, err
	}
	a, aerr := toAff(v)
	if aerr != nil {
		return aff{}, i.symBlockedErr(e.Pos(), "loop %s is not affine in the enclosing loop indices", what)
	}
	return a, nil
}

// symNestBody creates the nest node for a canonical header, binds its
// induction symbol in a fresh symbolic frame, and executes the body.
func (i *interp) symNestBody(fs *ast.ForStmt, header *analysis.LoopHeader, lo, hi, step aff) error {
	s := i.sym.newSym(header.Var.Name())
	n := &nest{
		pos: fs.Pos(), sym: s, lo: lo, hi: hi, cmp: header.Cmp,
		step: step, stepOp: header.StepOp,
		headerExprs: headerExprsOf(header),
	}
	parent := i.sym.cur
	if parent != nil {
		parent.items = append(parent.items, nItem{sub: n})
	} else {
		i.sym.root = n
	}
	i.sym.cur = n
	savedFr := i.fr
	i.fr = newFrame(i.fr, i.pkg(), true)
	if i.sym.rootFrame == nil {
		i.sym.rootFrame = i.fr
	}
	i.fr.define(header.Var, affSym(s))
	c, err := i.execBlock(fs.Body.List)
	i.fr = savedFr
	i.sym.cur = parent
	if err != nil {
		return err
	}
	if c != ctrlNone {
		return i.symBlockedErr(fs.Pos(), "loop body exits early (break or continue)")
	}
	return nil
}

func headerExprsOf(h *analysis.LoopHeader) []ast.Expr {
	out := []ast.Expr{h.Init, h.Bound}
	if h.Step != nil {
		out = append(out, h.Step)
	}
	return out
}

// symEvent appends one access event to the current nest under the
// active guard.
func (i *interp) symEvent(ev *nEvent) {
	ev.guard = i.sym.guard
	i.sym.cur.items = append(i.sym.cur.items, nItem{ev: ev})
	i.sym.events++
}

// symShadowWrite shadows a write to outer (concrete) storage. The
// stored value is opaque regardless of what was written: a value
// assigned inside the loop body is iteration-dependent, and the body
// executes only once symbolically.
func (i *interp) symShadowWrite(obj types.Object, _ value) {
	fr := i.sym.rootFrame
	if fr == nil {
		fr = i.fr
	}
	if c, owner := i.fr.lookup(obj); c != nil && owner.sym {
		c.v = opaque{} // already shadowed: update in place
	} else {
		fr.define(obj, opaque{})
	}
	i.sym.assigned[obj] = true
}

// symDefine handles := inside a nest attempt. Integer definitions whose
// right side is one of the two recognized derived forms (s/2,
// bit-reversal of s) introduce decorated derived symbols; anything else
// evaluates normally, degrading to opaque when the value is unknown but
// the evaluation recorded no events.
func (i *interp) symDefine(s *ast.AssignStmt) error {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if obj := i.info().Defs[id]; obj != nil && isIntType(obj.Type()) {
				if ds := i.deriveSym(id.Name, s.Rhs[0]); ds != nil {
					i.sym.cur.derived = append(i.sym.cur.derived, ds)
					i.fr.define(obj, affSym(ds))
					return nil
				}
			}
		}
	}
	before := i.sym.events
	vals, err := i.evalRHS(s)
	if err != nil {
		if _, ok := err.(*evalError); !ok {
			return err
		}
		if i.sym.events != before {
			return i.symBlockedErr(s.Pos(), "declaration mixes memory accesses with a value the extractor cannot model")
		}
		vals = make([]value, len(s.Lhs))
		for k := range vals {
			vals[k] = opaque{}
		}
	}
	for k, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return i.symBlockedErr(lhs.Pos(), "non-identifier in short declaration")
		}
		if id.Name == "_" {
			continue
		}
		if obj := i.info().Defs[id]; obj != nil {
			i.fr.define(obj, vals[k])
			continue
		}
		if err := i.assignTo(id, vals[k]); err != nil {
			return err
		}
	}
	return nil
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// deriveSym recognizes the two non-affine integer definitions the shape
// matchers understand structurally:
//
//	half := size / 2
//	j := int(bits.Reverse32(uint32(i)) >> (32 - logN))
//
// Both become decorated symbols; everything else returns nil and falls
// through to ordinary evaluation.
func (i *interp) deriveSym(name string, rhs ast.Expr) *nsym {
	e := ast.Unparen(rhs)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.QUO {
		base, ok := i.symOf(b.X)
		if !ok {
			return nil
		}
		if k, ok := i.concreteOf(b.Y); ok && k == 2 {
			s := i.sym.newSym(name)
			s.halfOf = base
			return s
		}
		return nil
	}
	conv, ok := e.(*ast.CallExpr)
	if !ok || !isConversion(i.info(), conv) || len(conv.Args) != 1 {
		return nil
	}
	shr, ok := ast.Unparen(conv.Args[0]).(*ast.BinaryExpr)
	if !ok || shr.Op != token.SHR {
		return nil
	}
	rev, ok := ast.Unparen(shr.X).(*ast.CallExpr)
	if !ok || len(rev.Args) != 1 {
		return nil
	}
	fn := analysis.CalleeFunc(i.info(), rev)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/bits" || fn.Name() != "Reverse32" {
		return nil
	}
	inner, ok := ast.Unparen(rev.Args[0]).(*ast.CallExpr)
	if !ok || !isConversion(i.info(), inner) || len(inner.Args) != 1 {
		return nil
	}
	base, ok := i.symOf(inner.Args[0])
	if !ok {
		return nil
	}
	sh, ok := i.concreteOf(shr.Y)
	if !ok {
		return nil
	}
	width := 32 - sh
	if width <= 0 || width >= 32 {
		return nil
	}
	s := i.sym.newSym(name)
	s.bitrevOf = base
	s.bitrevBits = int(width)
	return s
}

// symOf evaluates an expression expecting a bare symbol reference.
func (i *interp) symOf(e ast.Expr) (*nsym, bool) {
	before := i.sym.events
	v, err := i.evalExpr(e)
	if err != nil || i.sym.events != before {
		return nil, false
	}
	a, ok := v.(aff)
	if !ok {
		return nil, false
	}
	return a.singleSym()
}

// concreteOf evaluates an expression expecting a concrete integer.
func (i *interp) concreteOf(e ast.Expr) (int64, bool) {
	before := i.sym.events
	v, err := i.evalExpr(e)
	if err != nil || i.sym.events != before {
		return 0, false
	}
	return isConcreteInt(v)
}

// symIf handles an if inside a nest attempt: concrete conditions branch
// normally, one level of affine comparison becomes an event guard (the
// FFT's bit-reversal swap), and anything else blocks the nest.
func (i *interp) symIf(s *ast.IfStmt) (ctrl, error) {
	if s.Init != nil {
		return ctrlNone, i.symBlockedErr(s.Pos(), "if statement with init clause inside a candidate nest")
	}
	cond, err := i.evalExpr(s.Cond)
	if err != nil {
		if _, ok := err.(*evalError); !ok {
			return ctrlNone, err
		}
	} else if b, ok := truthy(cond); ok {
		if b {
			return i.execBlock(s.Body.List)
		}
		if s.Else != nil {
			return i.execStmt(s.Else)
		}
		return ctrlNone, nil
	}
	if reason, ok := i.assumeFalse(s.Pos()); ok {
		if reason == "" {
			return ctrlNone, i.symBlockedErr(s.Pos(), "%s directive requires a reason", directivePrefix)
		}
		if s.Else != nil {
			return ctrlNone, i.symBlockedErr(s.Pos(), "assume-false directive cannot skip an if with an else branch")
		}
		return ctrlNone, nil
	}
	if i.sym.guard != nil {
		return ctrlNone, i.symBlockedErr(s.Pos(), "nested guard inside a candidate nest")
	}
	if s.Else != nil {
		return ctrlNone, i.symBlockedErr(s.Pos(), "data-dependent branch with an else inside a candidate nest")
	}
	be, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok {
		return ctrlNone, i.symBlockedErr(s.Cond.Pos(), "branch condition is data-dependent (not affine in the loop indices)")
	}
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return ctrlNone, i.symBlockedErr(s.Cond.Pos(), "branch condition is data-dependent (not affine in the loop indices)")
	}
	lv, err := i.evalExpr(be.X)
	if err != nil {
		return ctrlNone, i.symBlockedErr(be.X.Pos(), "branch condition is data-dependent (not affine in the loop indices)")
	}
	rv, err := i.evalExpr(be.Y)
	if err != nil {
		return ctrlNone, i.symBlockedErr(be.Y.Pos(), "branch condition is data-dependent (not affine in the loop indices)")
	}
	la, lerr := toAff(lv)
	ra, rerr := toAff(rv)
	if lerr != nil || rerr != nil {
		return ctrlNone, i.symBlockedErr(s.Cond.Pos(), "branch condition is data-dependent (not affine in the loop indices)")
	}
	i.sym.guard = &nGuard{lhs: la, op: be.Op, rhs: ra}
	c, err := i.execBlock(s.Body.List)
	i.sym.guard = nil
	if err != nil {
		return ctrlNone, err
	}
	if c != ctrlNone {
		return ctrlNone, i.symBlockedErr(s.Pos(), "guarded body exits the loop early")
	}
	return ctrlNone, nil
}
