package extract

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"

	"github.com/resilience-models/dvf/internal/analytic"
)

// maxFlatten bounds Repeat expansion during comparison.
const maxFlatten = 1 << 20

// Flatten expands every Repeat into its unrolled phase sequence so that
// descriptors that factor repetition differently (an extracted
// Repeat{2, [Smooth]} vs a hand-written pair of Smooths) compare equal
// when they describe the same access sequence.
func Flatten(phases []analytic.Phase) ([]analytic.Phase, error) {
	var out []analytic.Phase
	var walk func(ps []analytic.Phase) error
	walk = func(ps []analytic.Phase) error {
		for _, p := range ps {
			if r, ok := p.(analytic.Repeat); ok {
				for k := 0; k < r.Count; k++ {
					if err := walk(r.Body); err != nil {
						return err
					}
				}
				continue
			}
			if len(out) >= maxFlatten {
				return fmt.Errorf("extract: flattened phase program exceeds %d phases", maxFlatten)
			}
			out = append(out, p)
		}
		return nil
	}
	if err := walk(phases); err != nil {
		return nil, err
	}
	return out, nil
}

// Equal reports whether two descriptors describe the same kernel: same
// name, same region table, and the same flattened phase sequence.
func Equal(a, b *analytic.Descriptor) bool {
	return Diff(a, b) == ""
}

// Diff returns a human-readable description of the first difference
// between two descriptors, or "" when they are equivalent.
func Diff(a, b *analytic.Descriptor) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return "one descriptor is nil"
	}
	if a.Kernel != b.Kernel {
		return fmt.Sprintf("kernel name %q vs %q", a.Kernel, b.Kernel)
	}
	if len(a.Regions) != len(b.Regions) {
		return fmt.Sprintf("%d regions vs %d", len(a.Regions), len(b.Regions))
	}
	for k := range a.Regions {
		if a.Regions[k] != b.Regions[k] {
			return fmt.Sprintf("region %d: %+v vs %+v", k, a.Regions[k], b.Regions[k])
		}
	}
	fa, errA := Flatten(a.Phases)
	fb, errB := Flatten(b.Phases)
	if errA != nil || errB != nil {
		if reflect.DeepEqual(a.Phases, b.Phases) {
			return ""
		}
		return "phase programs too large to flatten and not structurally identical"
	}
	if len(fa) != len(fb) {
		return fmt.Sprintf("%d flattened phases vs %d", len(fa), len(fb))
	}
	for k := range fa {
		if !reflect.DeepEqual(fa[k], fb[k]) {
			return fmt.Sprintf("flattened phase %d: %+v vs %+v", k, fa[k], fb[k])
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// JSON encoding. Phases serialize as a flat tagged union: one "kind"
// field plus the union of all phase fields, omitempty everywhere.

type phaseJSON struct {
	Kind string `json:"kind"`

	Streams []analytic.Traversal `json:"streams,omitempty"`

	Matrix string `json:"matrix,omitempty"`
	Vec    string `json:"vec,omitempty"`
	Out    string `json:"out,omitempty"`
	N      int    `json:"n,omitempty"`

	Region      string `json:"region,omitempty"`
	Dim         int    `json:"dim,omitempty"`
	OffsetElems int    `json:"offsetElems,omitempty"`

	FineDim    int `json:"fineDim,omitempty"`
	CoarseDim  int `json:"coarseDim,omitempty"`
	FineOffset int `json:"fineOffset,omitempty"`
	CoarseOffs int `json:"coarseOffs,omitempty"`

	Count int         `json:"count,omitempty"`
	Body  []phaseJSON `json:"body,omitempty"`
}

type descriptorJSON struct {
	Kernel  string            `json:"kernel"`
	Regions []analytic.Region `json:"regions"`
	Phases  []phaseJSON       `json:"phases"`
}

func phasesToJSON(ps []analytic.Phase) ([]phaseJSON, error) {
	out := make([]phaseJSON, 0, len(ps))
	for _, p := range ps {
		switch p := p.(type) {
		case analytic.Stream:
			out = append(out, phaseJSON{Kind: "stream", Streams: p.Streams})
		case analytic.MatVec:
			out = append(out, phaseJSON{Kind: "matvec", Matrix: p.Matrix, Vec: p.Vec, Out: p.Out, N: p.N})
		case analytic.Smooth:
			out = append(out, phaseJSON{Kind: "smooth", Region: p.Region, Dim: p.Dim, OffsetElems: p.OffsetElems})
		case analytic.Restrict:
			out = append(out, phaseJSON{Kind: "restrict", Region: p.Region, FineDim: p.FineDim, CoarseDim: p.CoarseDim, FineOffset: p.FineOffset, CoarseOffs: p.CoarseOffs})
		case analytic.Prolong:
			out = append(out, phaseJSON{Kind: "prolong", Region: p.Region, FineDim: p.FineDim, CoarseDim: p.CoarseDim, FineOffset: p.FineOffset, CoarseOffs: p.CoarseOffs})
		case analytic.BitReverse:
			out = append(out, phaseJSON{Kind: "bitreverse", Region: p.Region, N: p.N})
		case analytic.Butterflies:
			out = append(out, phaseJSON{Kind: "butterflies", Region: p.Region, N: p.N})
		case analytic.Repeat:
			body, err := phasesToJSON(p.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, phaseJSON{Kind: "repeat", Count: p.Count, Body: body})
		default:
			return nil, fmt.Errorf("extract: unencodable phase %T", p)
		}
	}
	return out, nil
}

func phasesFromJSON(ps []phaseJSON) ([]analytic.Phase, error) {
	out := make([]analytic.Phase, 0, len(ps))
	for _, p := range ps {
		switch p.Kind {
		case "stream":
			out = append(out, analytic.Stream{Streams: p.Streams})
		case "matvec":
			out = append(out, analytic.MatVec{Matrix: p.Matrix, Vec: p.Vec, Out: p.Out, N: p.N})
		case "smooth":
			out = append(out, analytic.Smooth{Region: p.Region, Dim: p.Dim, OffsetElems: p.OffsetElems})
		case "restrict":
			out = append(out, analytic.Restrict{Region: p.Region, FineDim: p.FineDim, CoarseDim: p.CoarseDim, FineOffset: p.FineOffset, CoarseOffs: p.CoarseOffs})
		case "prolong":
			out = append(out, analytic.Prolong{Region: p.Region, FineDim: p.FineDim, CoarseDim: p.CoarseDim, FineOffset: p.FineOffset, CoarseOffs: p.CoarseOffs})
		case "bitreverse":
			out = append(out, analytic.BitReverse{Region: p.Region, N: p.N})
		case "butterflies":
			out = append(out, analytic.Butterflies{Region: p.Region, N: p.N})
		case "repeat":
			body, err := phasesFromJSON(p.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, analytic.Repeat{Count: p.Count, Body: body})
		default:
			return nil, fmt.Errorf("extract: unknown phase kind %q", p.Kind)
		}
	}
	return out, nil
}

// MarshalDescriptor renders a descriptor as indented, kind-tagged JSON.
func MarshalDescriptor(d *analytic.Descriptor) ([]byte, error) {
	phases, err := phasesToJSON(d.Phases)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(descriptorJSON{Kernel: d.Kernel, Regions: d.Regions, Phases: phases}, "", "  ")
}

// UnmarshalDescriptor parses MarshalDescriptor output and validates it.
func UnmarshalDescriptor(data []byte) (*analytic.Descriptor, error) {
	var dj descriptorJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	phases, err := phasesFromJSON(dj.Phases)
	if err != nil {
		return nil, err
	}
	d := &analytic.Descriptor{Kernel: dj.Kernel, Regions: dj.Regions, Phases: phases}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Go source rendering (dvf-extract -format go).

// RenderGo renders a descriptor as a compilable Go function returning it.
func RenderGo(d *analytic.Descriptor, pkg, funcName string) ([]byte, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by dvf-extract; kernel %s. DO NOT EDIT.\n\n", d.Kernel)
	fmt.Fprintf(&b, "package %s\n\n", pkg)
	b.WriteString("import \"github.com/resilience-models/dvf/internal/analytic\"\n\n")
	fmt.Fprintf(&b, "// %s is the statically extracted access pattern of %s.\n", funcName, d.Kernel)
	fmt.Fprintf(&b, "func %s() *analytic.Descriptor {\n", funcName)
	b.WriteString("\treturn &analytic.Descriptor{\n")
	fmt.Fprintf(&b, "\t\tKernel: %q,\n", d.Kernel)
	b.WriteString("\t\tRegions: []analytic.Region{\n")
	for _, r := range d.Regions {
		fmt.Fprintf(&b, "\t\t\t{Name: %q, Bytes: %d, ElemSize: %d},\n", r.Name, r.Bytes, r.ElemSize)
	}
	b.WriteString("\t\t},\n")
	b.WriteString("\t\tPhases: []analytic.Phase{\n")
	if err := renderPhases(&b, d.Phases, 3); err != nil {
		return nil, err
	}
	b.WriteString("\t\t},\n\t}\n}\n")
	return []byte(b.String()), nil
}

func renderPhases(b *strings.Builder, ps []analytic.Phase, depth int) error {
	ind := strings.Repeat("\t", depth)
	for _, p := range ps {
		switch p := p.(type) {
		case analytic.Stream:
			fmt.Fprintf(b, "%sanalytic.Stream{Streams: []analytic.Traversal{\n", ind)
			for _, t := range p.Streams {
				fmt.Fprintf(b, "%s\t{Region: %q, StartElem: %d, StrideElems: %d, Count: %d},\n",
					ind, t.Region, t.StartElem, t.StrideElems, t.Count)
			}
			fmt.Fprintf(b, "%s}},\n", ind)
		case analytic.MatVec:
			fmt.Fprintf(b, "%sanalytic.MatVec{Matrix: %q, Vec: %q, Out: %q, N: %d},\n", ind, p.Matrix, p.Vec, p.Out, p.N)
		case analytic.Smooth:
			fmt.Fprintf(b, "%sanalytic.Smooth{Region: %q, Dim: %d, OffsetElems: %d},\n", ind, p.Region, p.Dim, p.OffsetElems)
		case analytic.Restrict:
			fmt.Fprintf(b, "%sanalytic.Restrict{Region: %q, FineDim: %d, CoarseDim: %d, FineOffset: %d, CoarseOffs: %d},\n",
				ind, p.Region, p.FineDim, p.CoarseDim, p.FineOffset, p.CoarseOffs)
		case analytic.Prolong:
			fmt.Fprintf(b, "%sanalytic.Prolong{Region: %q, FineDim: %d, CoarseDim: %d, FineOffset: %d, CoarseOffs: %d},\n",
				ind, p.Region, p.FineDim, p.CoarseDim, p.FineOffset, p.CoarseOffs)
		case analytic.BitReverse:
			fmt.Fprintf(b, "%sanalytic.BitReverse{Region: %q, N: %d},\n", ind, p.Region, p.N)
		case analytic.Butterflies:
			fmt.Fprintf(b, "%sanalytic.Butterflies{Region: %q, N: %d},\n", ind, p.Region, p.N)
		case analytic.Repeat:
			fmt.Fprintf(b, "%sanalytic.Repeat{Count: %d, Body: []analytic.Phase{\n", ind, p.Count)
			if err := renderPhases(b, p.Body, depth+1); err != nil {
				return err
			}
			fmt.Fprintf(b, "%s}},\n", ind)
		default:
			return fmt.Errorf("extract: unrenderable phase %T", p)
		}
	}
	return nil
}
