package extract

import (
	"fmt"
	"go/token"
	"go/types"

	"github.com/resilience-models/dvf/internal/analysis"
)

// The abstract value domain of the extractor's partial evaluator. Every
// expression in the kernel evaluates to one of these:
//
//   - concrete scalars (intVal, floatVal, boolVal, stringVal, nilVal)
//     for everything derived from the bound configuration and literals;
//   - opaque for runtime data the model deliberately does not track
//     (floating-point element values, twiddle factors, error values);
//   - affine linear forms over loop symbols while a nest is being built
//     symbolically (see nest.go);
//   - structured handles (struct, pointer, slice) for the kernel's own
//     plumbing, so field and element accesses resolve concretely; and
//   - trace handles (registry, memory, region) for the instrumentation
//     API, whose calls become access events instead of being executed.
//
// The split between sliceVal and dataSlice is the soundness pivot: a
// dataSlice ([]float64 / []complex128 bulk data) has a concrete length
// but opaque elements, and writes into it are no-ops — runtime data can
// never feed back into addresses or control flow, because every read
// out of it is opaque and anything opaque that reaches a branch or a
// subscript is rejected, not approximated.

type value interface{}

type (
	intVal    int64
	floatVal  float64
	boolVal   bool
	stringVal string
)

// nilVal is the typed or untyped nil.
type nilVal struct{}

// opaque is a statically unknown value.
type opaque struct{}

// cell is one mutable storage location (variable, field, slice element).
type cell struct{ v value }

// structVal is the shared storage of a struct; pointers alias it.
type structVal struct {
	fields map[string]*cell
}

// ptrVal is a pointer to struct storage (the only pointer shape the
// kernels use; &T{} literals and new(T) produce one).
type ptrVal struct{ to *structVal }

// sliceVal is a small slice with per-element concrete storage ([]int
// offsets, []*mgGrid level handles). Append copies the header and shares
// cells, matching Go's aliasing.
type sliceVal struct{ elems []*cell }

// dataSlice is bulk numeric data: concrete length, opaque elements.
type dataSlice struct{ n int64 }

// tupleVal carries multi-result returns between call and assignment.
type tupleVal struct{ vs []value }

// regionInfo is the extractor's record of one trace.Registry allocation.
type regionInfo struct {
	name  string
	bytes int64
	order int
	sizes map[int64]bool // element sizes observed at access events
}

// regionVal is the value of a trace.Region; copies share the record.
type regionVal struct{ info *regionInfo }

// registryVal and memoryVal are the trace.Registry / trace.Memory
// handles; their method calls are intercepted as primitives.
type registryVal struct{}
type memoryVal struct{}

// frame is one lexical environment: a function activation or a symbolic
// loop scope. Lookup walks the parent chain; function activations start
// a fresh chain (the kernels use no closures).
type frame struct {
	parent *frame
	pkg    *analysis.Package // resolves idents/selections for code in this frame
	vars   map[types.Object]*cell
	// sym marks frames created while building a symbolic loop nest.
	// Writes to cells owned by non-sym frames are shadowed locally and
	// recorded (nest.assigned) instead of mutating concrete state, so an
	// abandoned nest attempt leaves the interpreter untouched.
	sym bool
}

func newFrame(parent *frame, pkg *analysis.Package, sym bool) *frame {
	return &frame{parent: parent, pkg: pkg, vars: make(map[types.Object]*cell), sym: sym}
}

// lookup finds the cell binding obj, walking outward.
func (fr *frame) lookup(obj types.Object) (*cell, *frame) {
	for f := fr; f != nil; f = f.parent {
		if c, ok := f.vars[obj]; ok {
			return c, f
		}
	}
	return nil, nil
}

// define binds obj in this frame.
func (fr *frame) define(obj types.Object, v value) {
	fr.vars[obj] = &cell{v: v}
}

// inextractableError is the precise rejection the soundness contract
// promises: the first construct that cannot be modeled, with its
// position. It satisfies errors.As via the exported Inextractable.
type inextractableError struct {
	pos    token.Position
	reason string
}

func (e *inextractableError) Error() string {
	return fmt.Sprintf("%s: not statically extractable: %s", e.pos, e.reason)
}

// evalError is an internal "this expression has no static value" signal;
// lenient contexts (returns in traced code, derived-symbol creation)
// catch it and degrade to opaque, strict contexts escalate it.
type evalError struct {
	pos    token.Pos
	reason string
}

func (e *evalError) Error() string { return e.reason }

// isConcreteInt unwraps an intVal.
func isConcreteInt(v value) (int64, bool) {
	i, ok := v.(intVal)
	return int64(i), ok
}

// truthy unwraps a boolVal.
func truthy(v value) (bool, bool) {
	b, ok := v.(boolVal)
	return bool(b), ok
}
