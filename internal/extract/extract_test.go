package extract_test

import (
	"math"
	"sync"
	"testing"

	"github.com/resilience-models/dvf/internal/analysis"
	"github.com/resilience-models/dvf/internal/analytic"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/extract"
	"github.com/resilience-models/dvf/internal/kernels"
)

const kernelsPath = "github.com/resilience-models/dvf/internal/kernels"

// The loaded program is shared across tests: loading and type-checking the
// kernels package (plus its local imports) once keeps the differential
// wall fast.
var (
	progOnce sync.Once
	progVal  *analysis.Program
	progErr  error
)

func kernelProgram(t *testing.T) *analysis.Program {
	t.Helper()
	progOnce.Do(func() {
		loader, err := analysis.NewLoader(".")
		if err != nil {
			progErr = err
			return
		}
		if _, err := loader.Load(kernelsPath); err != nil {
			progErr = err
			return
		}
		progVal = loader.Program()
	})
	if progErr != nil {
		t.Fatalf("loading kernels package: %v", progErr)
	}
	return progVal
}

func targetFor(t *testing.T, k kernels.Kernel) extract.Target {
	t.Helper()
	prov, ok := kernels.Provenance(k)
	if !ok {
		t.Fatalf("kernel %s has no extraction provenance", k.Name())
	}
	return extract.Target{
		Kernel:   k.Name(),
		Path:     prov.ImportPath,
		TypeName: prov.TypeName,
		Method:   prov.Method,
		Ints:     prov.Ints,
		Floats:   prov.Floats,
		Bools:    prov.Bools,
	}
}

// patternKernels returns the suite's kernels that publish a hand-written
// access pattern, i.e. the four the extractor must reproduce.
func patternKernels(suite []kernels.Kernel) []kernels.Kernel {
	var out []kernels.Kernel
	for _, k := range suite {
		if _, ok := kernels.Provenance(k); ok {
			out = append(out, k)
		}
	}
	return out
}

// TestExtractMatchesHandWritten is the live differential wall: for every
// pattern-bearing kernel in both suites, static extraction from the real
// Run method must reproduce the hand-written descriptor exactly (up to
// Repeat factoring, which Diff flattens away).
func TestExtractMatchesHandWritten(t *testing.T) {
	prog := kernelProgram(t)
	suites := map[string][]kernels.Kernel{
		"verification": kernels.VerificationSuite(),
		"profiling":    kernels.ProfilingSuite(),
	}
	for name, suite := range suites {
		ks := patternKernels(suite)
		if len(ks) != 4 {
			t.Fatalf("%s suite: want 4 pattern-bearing kernels, got %d", name, len(ks))
		}
		for _, k := range ks {
			k := k
			t.Run(name+"/"+k.Name(), func(t *testing.T) {
				want, err := k.(kernels.PatternSource).AccessPattern()
				if err != nil {
					t.Fatalf("hand-written AccessPattern: %v", err)
				}
				got, err := extract.Extract(prog, targetFor(t, k))
				if err != nil {
					t.Fatalf("Extract: %v", err)
				}
				if d := extract.Diff(got, want); d != "" {
					t.Fatalf("extracted descriptor differs from hand-written: %s", d)
				}
			})
		}
	}
}

// TestExtractedDVFWithinTolerance closes the loop through the analytic
// engine: solving the extracted descriptor must land within the pinned
// simulator tolerance of the hand-written solve on every Table IV cache,
// per region and in total.
func TestExtractedDVFWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("solver matrix skipped in -short mode")
	}
	prog := kernelProgram(t)
	cases := []struct {
		suite []kernels.Kernel
		cfgs  []cache.Config
	}{
		{kernels.VerificationSuite(), cache.VerificationConfigs()},
		{kernels.ProfilingSuite(), cache.ProfilingConfigs()},
	}
	for _, tc := range cases {
		for _, k := range patternKernels(tc.suite) {
			want, err := k.(kernels.PatternSource).AccessPattern()
			if err != nil {
				t.Fatal(err)
			}
			got, err := extract.Extract(prog, targetFor(t, k))
			if err != nil {
				t.Fatalf("%s: Extract: %v", k.Name(), err)
			}
			for _, cfg := range tc.cfgs {
				pw, err := analytic.Solve(want, cfg)
				if err != nil {
					t.Fatalf("%s/%s: solving hand-written: %v", k.Name(), cfg.Name, err)
				}
				pg, err := analytic.Solve(got, cfg)
				if err != nil {
					t.Fatalf("%s/%s: solving extracted: %v", k.Name(), cfg.Name, err)
				}
				tol := analytic.Tolerance(k.Name(), cfg)
				for _, r := range want.Regions {
					mw, err := pw.Misses(r.Name)
					if err != nil {
						t.Fatal(err)
					}
					mg, err := pg.Misses(r.Name)
					if err != nil {
						t.Fatal(err)
					}
					if !within(mg, mw, tol) {
						t.Errorf("%s/%s: region %s misses %.1f (extracted) vs %.1f (hand-written), tolerance %.3f",
							k.Name(), cfg.Name, r.Name, mg, mw, tol)
					}
				}
				if !within(pg.TotalMisses(), pw.TotalMisses(), tol) {
					t.Errorf("%s/%s: total misses %.1f (extracted) vs %.1f (hand-written), tolerance %.3f",
						k.Name(), cfg.Name, pg.TotalMisses(), pw.TotalMisses(), tol)
				}
			}
		}
	}
}

// within reports whether got is within rel of want (relative, with an
// absolute floor of 1 miss so zero-miss regions compare exactly).
func within(got, want, rel float64) bool {
	if got == want {
		return true
	}
	if rel == 0 {
		return false
	}
	bound := rel * math.Abs(want)
	if bound < 1 {
		bound = 1
	}
	return math.Abs(got-want) <= bound
}
