package extract

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"github.com/resilience-models/dvf/internal/analysis"
	"github.com/resilience-models/dvf/internal/analytic"
)

func (i *interp) evalExpr(e ast.Expr) (value, error) {
	if err := i.step(e.Pos()); err != nil {
		return nil, err
	}
	info := i.info()
	// Constants first: go/types has already folded every constant
	// expression (named constants, untyped literals in context, math.Pi).
	if tv, ok := info.Types[e]; ok {
		if tv.Value != nil {
			return constValue(e.Pos(), tv)
		}
		if tv.IsNil() {
			return nilVal{}, nil
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return i.evalExpr(e.X)
	case *ast.Ident:
		return i.evalIdent(e)
	case *ast.SelectorExpr:
		return i.evalSelector(e)
	case *ast.StarExpr:
		v, err := i.evalExpr(e.X)
		if err != nil {
			return nil, err
		}
		if p, ok := v.(ptrVal); ok {
			return p.to, nil
		}
		return nil, evalFail(e.Pos(), "dereference of non-pointer value")
	case *ast.UnaryExpr:
		return i.evalUnary(e)
	case *ast.BinaryExpr:
		return i.evalBinary(e)
	case *ast.CallExpr:
		return i.evalCall(e)
	case *ast.CompositeLit:
		return i.evalComposite(e)
	case *ast.IndexExpr:
		return i.evalIndex(e)
	case *ast.SliceExpr:
		return i.evalSlice(e)
	case *ast.BasicLit:
		return nil, evalFail(e.Pos(), "literal outside constant context")
	case *ast.FuncLit:
		return nil, evalFail(e.Pos(), "function literal")
	case *ast.TypeAssertExpr:
		return nil, evalFail(e.Pos(), "type assertion")
	}
	return nil, evalFail(e.Pos(), "unsupported expression %T", e)
}

func constValue(pos token.Pos, tv types.TypeAndValue) (value, error) {
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return nil, evalFail(pos, "constant of non-basic type")
	}
	switch {
	case b.Info()&types.IsBoolean != 0:
		return boolVal(constant.BoolVal(tv.Value)), nil
	case b.Info()&types.IsString != 0:
		return stringVal(constant.StringVal(tv.Value)), nil
	case b.Info()&types.IsInteger != 0:
		n, exact := constant.Int64Val(constant.ToInt(tv.Value))
		if !exact {
			return nil, evalFail(pos, "integer constant out of int64 range")
		}
		return intVal(n), nil
	case b.Info()&types.IsFloat != 0:
		f, _ := constant.Float64Val(tv.Value)
		return floatVal(f), nil
	case b.Info()&types.IsComplex != 0:
		return opaque{}, nil
	}
	return nil, evalFail(pos, "unsupported constant kind")
}

func (i *interp) evalIdent(id *ast.Ident) (value, error) {
	if id.Name == "_" {
		return opaque{}, nil
	}
	obj := i.info().Uses[id]
	if obj == nil {
		obj = i.info().Defs[id]
	}
	switch obj.(type) {
	case *types.Var:
		if c, _ := i.fr.lookup(obj); c != nil {
			return c.v, nil
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return nil, evalFail(id.Pos(), "read of package-level variable %s", id.Name)
		}
		return nil, evalFail(id.Pos(), "unbound variable %s", id.Name)
	case *types.Func:
		return nil, evalFail(id.Pos(), "function used as a value")
	case *types.Nil:
		return nilVal{}, nil
	}
	return nil, evalFail(id.Pos(), "unsupported identifier %s", id.Name)
}

func (i *interp) evalSelector(sel *ast.SelectorExpr) (value, error) {
	info := i.info()
	if s, ok := info.Selections[sel]; ok && s.Kind() != types.FieldVal {
		return nil, evalFail(sel.Pos(), "method value %s", sel.Sel.Name)
	}
	if _, ok := info.Selections[sel]; !ok {
		// Qualified identifier from another package: non-constant package
		// state is outside the static model (constants were handled above).
		return nil, evalFail(sel.Pos(), "cross-package variable %s", sel.Sel.Name)
	}
	base, err := i.evalExpr(sel.X)
	if err != nil {
		return nil, err
	}
	if p, ok := base.(ptrVal); ok {
		base = p.to
	}
	switch b := base.(type) {
	case *structVal:
		if c, ok := b.fields[sel.Sel.Name]; ok {
			return c.v, nil
		}
		return opaque{}, nil
	case regionVal, opaque:
		return opaque{}, nil // Region.ID / Region.Base: bookkeeping only
	}
	return nil, evalFail(sel.Pos(), "field access on unsupported value")
}

func (i *interp) evalUnary(e *ast.UnaryExpr) (value, error) {
	if e.Op == token.AND {
		if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
			v, err := i.evalComposite(lit)
			if err != nil {
				return nil, err
			}
			if s, ok := v.(*structVal); ok {
				return ptrVal{to: s}, nil
			}
			return nil, evalFail(e.Pos(), "address of non-struct literal")
		}
		return nil, evalFail(e.Pos(), "address-of expression")
	}
	v, err := i.evalExpr(e.X)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case token.SUB:
		switch x := v.(type) {
		case intVal:
			return intVal(-int64(x)), nil
		case floatVal:
			return floatVal(-float64(x)), nil
		case aff:
			return x.neg(), nil
		case opaque:
			return opaque{}, nil
		}
	case token.ADD:
		return v, nil
	case token.NOT:
		if b, ok := v.(boolVal); ok {
			return boolVal(!bool(b)), nil
		}
		if _, ok := v.(opaque); ok {
			return opaque{}, nil
		}
	case token.XOR:
		if x, ok := v.(intVal); ok {
			return intVal(^int64(x)), nil
		}
	}
	return nil, evalFail(e.Pos(), "unsupported unary %s", e.Op)
}

func (i *interp) evalBinary(e *ast.BinaryExpr) (value, error) {
	if e.Op == token.LAND || e.Op == token.LOR {
		l, err := i.evalExpr(e.X)
		if err != nil {
			return nil, err
		}
		if b, ok := truthy(l); ok {
			if (e.Op == token.LAND && !b) || (e.Op == token.LOR && b) {
				return boolVal(b), nil
			}
			return i.evalExpr(e.Y)
		}
		return opaque{}, nil
	}
	l, err := i.evalExpr(e.X)
	if err != nil {
		return nil, err
	}
	r, err := i.evalExpr(e.Y)
	if err != nil {
		return nil, err
	}
	return i.binop(e.Pos(), e.Op, l, r)
}

func (i *interp) binop(pos token.Pos, op token.Token, l, r value) (value, error) {
	// Comparisons.
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return compare(op, l, r)
	}
	// Affine arithmetic (symbolic mode only).
	la, lIsAff := l.(aff)
	ra, rIsAff := r.(aff)
	if lIsAff || rIsAff {
		if li, ok := l.(intVal); ok {
			la, lIsAff = affConst(int64(li)), true
		}
		if ri, ok := r.(intVal); ok {
			ra, rIsAff = affConst(int64(ri)), true
		}
		if !lIsAff || !rIsAff {
			if _, ok := l.(floatVal); ok {
				return opaque{}, nil
			}
			if _, ok := r.(floatVal); ok {
				return opaque{}, nil
			}
			if isOpaque(l) || isOpaque(r) {
				return opaque{}, nil
			}
			return nil, evalFail(pos, "mixed affine/non-integer arithmetic")
		}
		switch op {
		case token.ADD:
			return normAff(la.add(ra)), nil
		case token.SUB:
			return normAff(la.add(ra.neg())), nil
		case token.MUL:
			if la.isConst() {
				return normAff(ra.scale(la.c)), nil
			}
			if ra.isConst() {
				return normAff(la.scale(ra.c)), nil
			}
			return nil, evalFail(pos, "product of two loop-dependent values is not affine")
		case token.QUO:
			if ra.isConst() && ra.c != 0 {
				if q, ok := la.div(ra.c); ok {
					return normAff(q), nil
				}
			}
			return nil, evalFail(pos, "loop-dependent division is not affine")
		}
		return nil, evalFail(pos, "operator %s on loop-dependent values is not affine", op)
	}
	// Concrete integer arithmetic.
	if li, ok := l.(intVal); ok {
		if ri, ok := r.(intVal); ok {
			return intArith(pos, op, int64(li), int64(ri))
		}
	}
	// Concrete float arithmetic.
	if lf, ok := toFloat(l); ok {
		if rf, ok := toFloat(r); ok {
			switch op {
			case token.ADD:
				return floatVal(lf + rf), nil
			case token.SUB:
				return floatVal(lf - rf), nil
			case token.MUL:
				return floatVal(lf * rf), nil
			case token.QUO:
				if rf == 0 {
					return nil, evalFail(pos, "float division by zero")
				}
				return floatVal(lf / rf), nil
			}
		}
	}
	if isOpaque(l) || isOpaque(r) {
		return opaque{}, nil
	}
	if lb, ok := l.(boolVal); ok {
		if rb, ok := r.(boolVal); ok && op == token.LAND {
			return boolVal(bool(lb) && bool(rb)), nil
		}
		if rb, ok := r.(boolVal); ok && op == token.LOR {
			return boolVal(bool(lb) || bool(rb)), nil
		}
	}
	if ls, ok := l.(stringVal); ok {
		if rs, ok := r.(stringVal); ok && op == token.ADD {
			return stringVal(string(ls) + string(rs)), nil
		}
	}
	return nil, evalFail(pos, "unsupported operands for %s", op)
}

func isOpaque(v value) bool { _, ok := v.(opaque); return ok }

// normAff collapses a constant affine form back to a plain integer.
func normAff(a aff) value {
	if a.isConst() {
		return intVal(a.c)
	}
	return a
}

func toFloat(v value) (float64, bool) {
	switch x := v.(type) {
	case floatVal:
		return float64(x), true
	case intVal:
		return float64(x), true
	}
	return 0, false
}

func intArith(pos token.Pos, op token.Token, a, b int64) (value, error) {
	switch op {
	case token.ADD:
		return intVal(a + b), nil
	case token.SUB:
		return intVal(a - b), nil
	case token.MUL:
		return intVal(a * b), nil
	case token.QUO:
		if b == 0 {
			return nil, evalFail(pos, "integer division by zero")
		}
		return intVal(a / b), nil
	case token.REM:
		if b == 0 {
			return nil, evalFail(pos, "integer modulo by zero")
		}
		return intVal(a % b), nil
	case token.AND:
		return intVal(a & b), nil
	case token.OR:
		return intVal(a | b), nil
	case token.XOR:
		return intVal(a ^ b), nil
	case token.AND_NOT:
		return intVal(a &^ b), nil
	case token.SHL:
		if b < 0 || b > 62 {
			return nil, evalFail(pos, "shift count out of range")
		}
		return intVal(a << uint(b)), nil
	case token.SHR:
		if b < 0 || b > 62 {
			return nil, evalFail(pos, "shift count out of range")
		}
		return intVal(a >> uint(b)), nil
	}
	return nil, evalFail(pos, "unsupported integer operator %s", op)
}

func compare(op token.Token, l, r value) (value, error) {
	if _, ok := l.(aff); ok {
		return opaque{}, nil // symIf inspects the AST for affine guards
	}
	if _, ok := r.(aff); ok {
		return opaque{}, nil
	}
	if isOpaque(l) || isOpaque(r) {
		return opaque{}, nil
	}
	_, lNil := l.(nilVal)
	_, rNil := r.(nilVal)
	if lNil || rNil {
		eq := lNil && rNil
		// Comparing a non-nil handle (pointer, slice, handle values) with
		// nil: our domain only stores non-nil handles for those kinds.
		switch op {
		case token.EQL:
			return boolVal(eq), nil
		case token.NEQ:
			return boolVal(!eq), nil
		}
		return nil, evalFail(token.NoPos, "ordered comparison with nil")
	}
	if li, ok := l.(intVal); ok {
		if ri, ok := r.(intVal); ok {
			return boolVal(cmpOrd(op, int64(li)-int64(ri))), nil
		}
	}
	if lf, ok := toFloat(l); ok {
		if rf, ok := toFloat(r); ok {
			switch {
			case lf < rf:
				return boolVal(cmpOrd(op, -1)), nil
			case lf > rf:
				return boolVal(cmpOrd(op, 1)), nil
			default:
				return boolVal(cmpOrd(op, 0)), nil
			}
		}
	}
	if ls, ok := l.(stringVal); ok {
		if rs, ok := r.(stringVal); ok {
			switch {
			case ls == rs:
				return boolVal(cmpOrd(op, 0)), nil
			case ls < rs:
				return boolVal(cmpOrd(op, -1)), nil
			default:
				return boolVal(cmpOrd(op, 1)), nil
			}
		}
	}
	if lb, ok := l.(boolVal); ok {
		if rb, ok := r.(boolVal); ok {
			switch op {
			case token.EQL:
				return boolVal(lb == rb), nil
			case token.NEQ:
				return boolVal(lb != rb), nil
			}
		}
	}
	return nil, evalFail(token.NoPos, "incomparable values")
}

func cmpOrd(op token.Token, sign int64) bool {
	switch op {
	case token.EQL:
		return sign == 0
	case token.NEQ:
		return sign != 0
	case token.LSS:
		return sign < 0
	case token.LEQ:
		return sign <= 0
	case token.GTR:
		return sign > 0
	case token.GEQ:
		return sign >= 0
	}
	return false
}

func (i *interp) evalComposite(lit *ast.CompositeLit) (value, error) {
	tv, ok := i.info().Types[lit]
	if !ok {
		return nil, evalFail(lit.Pos(), "untyped composite literal")
	}
	switch ut := tv.Type.Underlying().(type) {
	case *types.Struct:
		sv := &structVal{fields: make(map[string]*cell)}
		for f := 0; f < ut.NumFields(); f++ {
			sv.fields[ut.Field(f).Name()] = &cell{v: zeroValue(ut.Field(f).Type())}
		}
		for k, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				name, ok := kv.Key.(*ast.Ident)
				if !ok {
					return nil, evalFail(kv.Pos(), "non-identifier struct key")
				}
				v, err := i.evalExpr(kv.Value)
				if err != nil {
					return nil, err
				}
				sv.fields[name.Name] = &cell{v: v}
			} else {
				if k >= ut.NumFields() {
					return nil, evalFail(el.Pos(), "too many struct literal values")
				}
				v, err := i.evalExpr(el)
				if err != nil {
					return nil, err
				}
				sv.fields[ut.Field(k).Name()] = &cell{v: v}
			}
		}
		return sv, nil
	case *types.Slice:
		if isBulkElem(ut.Elem()) {
			return dataSlice{n: int64(len(lit.Elts))}, nil
		}
		sv := sliceVal{}
		for _, el := range lit.Elts {
			if _, ok := el.(*ast.KeyValueExpr); ok {
				return nil, evalFail(el.Pos(), "keyed slice literal")
			}
			v, err := i.evalExpr(el)
			if err != nil {
				return nil, err
			}
			sv.elems = append(sv.elems, &cell{v: v})
		}
		return sv, nil
	case *types.Map, *types.Array:
		return opaque{}, nil
	}
	return nil, evalFail(lit.Pos(), "unsupported composite literal")
}

// isBulkElem reports whether a slice of this element type is modeled as
// opaque bulk data (runtime numeric payload) rather than tracked storage.
func isBulkElem(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.Complex128)
}

func (i *interp) evalIndex(e *ast.IndexExpr) (value, error) {
	base, err := i.evalExpr(e.X)
	if err != nil {
		return nil, err
	}
	idx, err := i.evalExpr(e.Index)
	if err != nil {
		return nil, err
	}
	switch b := base.(type) {
	case dataSlice:
		return opaque{}, nil // bulk payload: reads are always opaque
	case sliceVal:
		k, ok := isConcreteInt(idx)
		if !ok {
			if _, isAff := idx.(aff); isAff {
				return nil, evalFail(e.Pos(), "loop-dependent index into tracked slice")
			}
			return opaque{}, nil
		}
		if k < 0 || k >= int64(len(b.elems)) {
			return nil, evalFail(e.Pos(), "index %d out of range", k)
		}
		return b.elems[k].v, nil
	case stringVal:
		return opaque{}, nil
	case opaque:
		return opaque{}, nil
	}
	return nil, evalFail(e.Pos(), "index into unsupported value")
}

func (i *interp) evalSlice(e *ast.SliceExpr) (value, error) {
	base, err := i.evalExpr(e.X)
	if err != nil {
		return nil, err
	}
	bound := func(ex ast.Expr, def int64) (int64, error) {
		if ex == nil {
			return def, nil
		}
		v, err := i.evalExpr(ex)
		if err != nil {
			return 0, err
		}
		n, ok := isConcreteInt(v)
		if !ok {
			return 0, evalFail(ex.Pos(), "slice bound is not statically known")
		}
		return n, nil
	}
	switch b := base.(type) {
	case dataSlice:
		lo, err := bound(e.Low, 0)
		if err != nil {
			return nil, err
		}
		hi, err := bound(e.High, b.n)
		if err != nil {
			return nil, err
		}
		if lo < 0 || hi < lo || hi > b.n {
			return nil, evalFail(e.Pos(), "slice bounds out of range")
		}
		return dataSlice{n: hi - lo}, nil
	case sliceVal:
		lo, err := bound(e.Low, 0)
		if err != nil {
			return nil, err
		}
		hi, err := bound(e.High, int64(len(b.elems)))
		if err != nil {
			return nil, err
		}
		if lo < 0 || hi < lo || hi > int64(len(b.elems)) {
			return nil, evalFail(e.Pos(), "slice bounds out of range")
		}
		return sliceVal{elems: b.elems[lo:hi]}, nil
	}
	return nil, evalFail(e.Pos(), "slice of unsupported value")
}

// assignTo writes v into the storage named by lhs. In symbolic mode the
// write is shadowed (see symShadowWrite) so an abandoned nest attempt
// leaves concrete state untouched.
func (i *interp) assignTo(lhs ast.Expr, v value) error {
	lhs = ast.Unparen(lhs)
	switch t := lhs.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return nil
		}
		obj := i.info().Uses[t]
		if obj == nil {
			obj = i.info().Defs[t]
		}
		if obj == nil {
			return i.inext(t.Pos(), "cannot resolve assignment target %s", t.Name)
		}
		c, owner := i.fr.lookup(obj)
		if c == nil {
			return i.inext(t.Pos(), "assignment to unbound variable %s", t.Name)
		}
		if i.sym != nil && !owner.sym {
			i.symShadowWrite(obj, v)
			return nil
		}
		c.v = v
		return nil
	case *ast.IndexExpr:
		base, err := i.evalExpr(t.X)
		if err != nil {
			return err
		}
		idx, err := i.evalExpr(t.Index)
		if err != nil {
			return err
		}
		switch b := base.(type) {
		case dataSlice:
			return nil // bulk payload writes never feed back into the model
		case sliceVal:
			if i.sym != nil {
				return i.symBlockedErr(t.Pos(), "write to tracked slice inside an affine nest")
			}
			k, ok := isConcreteInt(idx)
			if !ok {
				// Unknown position: every element may have been written.
				for _, c := range b.elems {
					c.v = opaque{}
				}
				return nil
			}
			if k < 0 || k >= int64(len(b.elems)) {
				return i.inext(t.Pos(), "index %d out of range in assignment", k)
			}
			b.elems[k].v = v
			return nil
		}
		return i.inext(t.Pos(), "write through value of unknown origin")
	case *ast.SelectorExpr:
		base, err := i.evalExpr(t.X)
		if err != nil {
			return err
		}
		if p, ok := base.(ptrVal); ok {
			base = p.to
		}
		if s, ok := base.(*structVal); ok {
			if i.sym != nil {
				return i.symBlockedErr(t.Pos(), "struct field write inside an affine nest")
			}
			c, ok := s.fields[t.Sel.Name]
			if !ok {
				c = &cell{}
				s.fields[t.Sel.Name] = c
			}
			c.v = v
			return nil
		}
		return i.inext(t.Pos(), "field write on unsupported value")
	}
	return i.inext(lhs.Pos(), "unsupported assignment target %T", lhs)
}

func zeroValue(t types.Type) value {
	switch ut := t.Underlying().(type) {
	case *types.Basic:
		switch {
		case ut.Info()&types.IsBoolean != 0:
			return boolVal(false)
		case ut.Info()&types.IsString != 0:
			return stringVal("")
		case ut.Info()&types.IsInteger != 0:
			return intVal(0)
		case ut.Info()&types.IsFloat != 0:
			return floatVal(0)
		default:
			return opaque{}
		}
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return nilVal{}
	case *types.Struct:
		sv := &structVal{fields: make(map[string]*cell)}
		for f := 0; f < ut.NumFields(); f++ {
			sv.fields[ut.Field(f).Name()] = &cell{v: zeroValue(ut.Field(f).Type())}
		}
		return sv
	}
	return opaque{}
}

// ---------------------------------------------------------------------------
// Calls

func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

func builtinOf(info *types.Info, call *ast.CallExpr) *types.Builtin {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			return b
		}
	}
	return nil
}

func (i *interp) evalCall(call *ast.CallExpr) (value, error) {
	info := i.info()
	if isConversion(info, call) {
		return i.evalConversion(call)
	}
	if b := builtinOf(info, call); b != nil {
		return i.evalBuiltin(call, b)
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return nil, i.inext(call.Pos(), "indirect call (function value or interface dispatch) cannot be extracted")
	}
	if tracePkgFunc(fn) {
		return i.evalTracePrimitive(call, fn)
	}
	if node := i.cg.Node(fn); node != nil {
		return i.evalLocalCall(call, fn, node)
	}
	return i.evalStdlibCall(call, fn)
}

func (i *interp) evalConversion(call *ast.CallExpr) (value, error) {
	if len(call.Args) != 1 {
		return nil, evalFail(call.Pos(), "malformed conversion")
	}
	v, err := i.evalExpr(call.Args[0])
	if err != nil {
		return nil, err
	}
	tv := i.info().Types[call]
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return v, nil // interface/pointer conversions: identity in our domain
	}
	switch {
	case b.Info()&types.IsInteger != 0:
		switch x := v.(type) {
		case intVal, aff:
			return x, nil
		case floatVal:
			return intVal(int64(float64(x))), nil
		case opaque:
			return opaque{}, nil
		}
	case b.Info()&types.IsFloat != 0:
		switch x := v.(type) {
		case floatVal:
			return x, nil
		case intVal:
			return floatVal(float64(x)), nil
		case aff, opaque:
			return opaque{}, nil
		}
	case b.Info()&types.IsComplex != 0:
		return opaque{}, nil
	case b.Info()&types.IsString != 0:
		if s, ok := v.(stringVal); ok {
			return s, nil
		}
		return opaque{}, nil
	}
	return nil, evalFail(call.Pos(), "unsupported conversion")
}

func (i *interp) evalBuiltin(call *ast.CallExpr, b *types.Builtin) (value, error) {
	args := make([]value, len(call.Args))
	switch b.Name() {
	case "make", "new":
		// Type argument first; evaluate only the size arguments below.
	default:
		for k, a := range call.Args {
			v, err := i.evalExpr(a)
			if err != nil {
				return nil, err
			}
			args[k] = v
		}
	}
	switch b.Name() {
	case "len":
		switch x := args[0].(type) {
		case dataSlice:
			return intVal(x.n), nil
		case sliceVal:
			return intVal(int64(len(x.elems))), nil
		case stringVal:
			return intVal(int64(len(string(x)))), nil
		case nilVal:
			return intVal(0), nil
		case opaque:
			return opaque{}, nil
		}
		return nil, evalFail(call.Pos(), "len of unsupported value")
	case "cap":
		return i.evalBuiltinLenLike(args[0], call.Pos())
	case "make":
		tv := i.info().Types[call]
		sl, ok := tv.Type.Underlying().(*types.Slice)
		if !ok {
			return opaque{}, nil // maps/channels are opaque
		}
		n := int64(0)
		if len(call.Args) >= 2 {
			v, err := i.evalExpr(call.Args[1])
			if err != nil {
				return nil, err
			}
			if n, ok = isConcreteInt(v); !ok {
				return nil, evalFail(call.Pos(), "make with non-static length")
			}
		}
		if isBulkElem(sl.Elem()) {
			return dataSlice{n: n}, nil
		}
		if n > maxUnroll {
			return nil, evalFail(call.Pos(), "tracked slice of %d elements is too large to model", n)
		}
		sv := sliceVal{elems: make([]*cell, n)}
		for k := range sv.elems {
			sv.elems[k] = &cell{v: zeroValue(sl.Elem())}
		}
		return sv, nil
	case "new":
		tv := i.info().Types[call]
		pt, ok := tv.Type.Underlying().(*types.Pointer)
		if !ok {
			return opaque{}, nil
		}
		z := zeroValue(pt.Elem())
		if s, ok := z.(*structVal); ok {
			return ptrVal{to: s}, nil
		}
		return opaque{}, nil
	case "append":
		base := args[0]
		var out sliceVal
		switch x := base.(type) {
		case nilVal:
		case sliceVal:
			out.elems = append([]*cell(nil), x.elems...)
		case dataSlice:
			return dataSlice{n: x.n + int64(len(args)-1)}, nil
		default:
			return nil, evalFail(call.Pos(), "append to unsupported value")
		}
		for _, v := range args[1:] {
			out.elems = append(out.elems, &cell{v: v})
		}
		return out, nil
	case "copy":
		if len(args) == 2 {
			if _, ok := args[0].(dataSlice); ok {
				return opaque{}, nil // bulk-to-bulk copies carry no model state
			}
			if dst, ok := args[0].(sliceVal); ok {
				if src, ok := args[1].(sliceVal); ok {
					n := len(dst.elems)
					if len(src.elems) < n {
						n = len(src.elems)
					}
					for k := 0; k < n; k++ {
						dst.elems[k].v = src.elems[k].v
					}
					return intVal(int64(n)), nil
				}
				for _, c := range dst.elems {
					c.v = opaque{}
				}
				return opaque{}, nil
			}
		}
		return opaque{}, nil
	case "complex", "real", "imag":
		return opaque{}, nil
	case "min", "max":
		best, ok := isConcreteInt(args[0])
		if !ok {
			return opaque{}, nil
		}
		for _, v := range args[1:] {
			n, ok := isConcreteInt(v)
			if !ok {
				return opaque{}, nil
			}
			if (b.Name() == "min" && n < best) || (b.Name() == "max" && n > best) {
				best = n
			}
		}
		return intVal(best), nil
	case "panic":
		return nil, i.inext(call.Pos(), "reachable panic")
	case "print", "println", "delete", "clear":
		return opaque{}, nil
	}
	return nil, evalFail(call.Pos(), "unsupported builtin %s", b.Name())
}

func (i *interp) evalBuiltinLenLike(v value, pos token.Pos) (value, error) {
	switch x := v.(type) {
	case dataSlice:
		return intVal(x.n), nil
	case sliceVal:
		return intVal(int64(len(x.elems))), nil
	case opaque:
		return opaque{}, nil
	}
	return nil, evalFail(pos, "cap of unsupported value")
}

// evalTracePrimitive intercepts the instrumentation API: allocations feed
// the region table, loads/stores become access events, everything else is
// inert bookkeeping.
func (i *interp) evalTracePrimitive(call *ast.CallExpr, fn *types.Func) (value, error) {
	args := make([]value, len(call.Args))
	for k, a := range call.Args {
		v, err := i.evalExpr(a)
		if err != nil {
			return nil, err
		}
		args[k] = v
	}
	switch fn.Name() {
	case "NewRegistry":
		return registryVal{}, nil
	case "NewMemory":
		return memoryVal{}, nil
	case "Alloc":
		if i.attempt != nil && i.attempt.pure {
			return nil, &fatalError{err: i.inext(call.Pos(), "allocation inside supposedly untraced code")}
		}
		if i.sym != nil {
			return nil, i.symBlockedErr(call.Pos(), "allocation inside a loop")
		}
		name, okN := args[0].(stringVal)
		bytes, okB := isConcreteInt(args[1])
		if !okN || !okB {
			return nil, i.inext(call.Pos(), "region allocation with non-static name or size")
		}
		ri := &regionInfo{name: string(name), bytes: bytes, order: len(i.regions), sizes: make(map[int64]bool)}
		i.regions = append(i.regions, ri)
		return regionVal{info: ri}, nil
	case "LoadN", "StoreN":
		return nil, i.accessEvent(call, args, fn.Name() == "StoreN")
	case "Load", "Store":
		return nil, i.inext(call.Pos(), "byte-granular trace.%s is not modeled; use LoadN/StoreN", fn.Name())
	case "Refs":
		return opaque{}, nil
	}
	// Registry/Region accessors carry no model state.
	return opaqueResults(fn), nil
}

func (i *interp) accessEvent(call *ast.CallExpr, args []value, write bool) error {
	if i.attempt != nil && i.attempt.pure {
		return &fatalError{err: i.inext(call.Pos(), "memory access inside supposedly untraced code")}
	}
	reg, ok := args[0].(regionVal)
	if !ok {
		return i.inext(call.Pos(), "access to a region that was not statically allocated")
	}
	size, ok := isConcreteInt(args[2])
	if !ok || size <= 0 {
		return i.inext(call.Pos(), "access with non-static element size")
	}
	if i.sym != nil {
		idx, err := toAff(args[1])
		if err != nil {
			return i.symBlockedErr(call.Args[1].Pos(), "subscript is data-dependent (not affine in the loop indices)")
		}
		i.symEvent(&nEvent{region: reg.info, idx: idx, size: size, write: write, pos: call.Pos()})
		return nil
	}
	idx, ok := isConcreteInt(args[1])
	if !ok {
		return i.inext(call.Args[1].Pos(), "subscript is data-dependent (not statically known)")
	}
	// A straight-line scalar access: a degenerate single-element stream.
	reg.info.sizes[size] = true
	*i.phases = append(*i.phases, analytic.Stream{Streams: []analytic.Traversal{{
		Region: reg.info.name, StartElem: int(idx), StrideElems: 1, Count: 1,
	}}})
	return nil
}

func toAff(v value) (aff, error) {
	switch x := v.(type) {
	case aff:
		return x, nil
	case intVal:
		return affConst(int64(x)), nil
	}
	return aff{}, evalFail(token.NoPos, "not affine")
}

func opaqueResults(fn *types.Func) value {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() <= 1 {
		return opaque{}
	}
	vs := make([]value, sig.Results().Len())
	for k := range vs {
		vs[k] = opaque{}
	}
	return tupleVal{vs: vs}
}

// evalLocalCall handles calls to module-local functions: trace-bearing
// callees are inlined (concretely or symbolically); untraced callees get
// a bounded concrete attempt with an elemOnly-gated opaque fallback.
func (i *interp) evalLocalCall(call *ast.CallExpr, fn *types.Func, node *analysis.FuncNode) (value, error) {
	args, recv, err := i.callArgs(call, fn)
	if err != nil {
		return nil, err
	}
	if i.sym != nil || i.funcBearing(fn) {
		return i.inlineCall(call, fn, node, recv, args)
	}
	var res value
	attemptErr := i.tryAttempt(func() error {
		v, err := i.inlineCall(call, fn, node, recv, args)
		res = v
		return err
	})
	if attemptErr == nil {
		return res, nil
	}
	if f, ok := attemptErr.(*fatalError); ok {
		return nil, f
	}
	if i.elemOnly(fn) {
		return opaqueResults(fn), nil
	}
	return nil, i.inext(call.Pos(), "call to %s is not statically evaluable and may write non-local state", fn.Name())
}

func (i *interp) callArgs(call *ast.CallExpr, fn *types.Func) (args []value, recv value, err error) {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, nil, evalFail(call.Pos(), "method call without selector")
		}
		recv, err = i.evalExpr(sel.X)
		if err != nil {
			return nil, nil, err
		}
	}
	args = make([]value, len(call.Args))
	for k, a := range call.Args {
		v, err := i.evalExpr(a)
		if err != nil {
			return nil, nil, err
		}
		args[k] = v
	}
	return args, recv, nil
}

func (i *interp) inlineCall(call *ast.CallExpr, fn *types.Func, node *analysis.FuncNode, recv value, args []value) (value, error) {
	if i.depth >= maxDepth {
		return nil, i.inext(call.Pos(), "call depth limit (possible recursion through %s)", fn.Name())
	}
	decl := node.Decl
	sig := fn.Type().(*types.Signature)
	if sig.Variadic() {
		return nil, i.inext(call.Pos(), "variadic call to %s", fn.Name())
	}
	fr := newFrame(nil, node.Pkg, i.sym != nil)
	if i.sym != nil {
		fr.parent = i.fr // symbolic inlining shares the nest environment
	}
	// Bind receiver and parameters.
	if sig.Recv() != nil && decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
		name := decl.Recv.List[0].Names[0]
		if obj := node.Pkg.Info.Defs[name]; obj != nil {
			fr.define(obj, recv)
		}
	}
	k := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if k >= len(args) {
				return nil, evalFail(call.Pos(), "argument count mismatch")
			}
			if obj := node.Pkg.Info.Defs[name]; obj != nil {
				fr.define(obj, args[k])
			}
			k++
		}
		if len(field.Names) == 0 {
			k++
		}
	}
	// Zero-initialize named results.
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := node.Pkg.Info.Defs[name]; obj != nil {
					fr.define(obj, zeroValue(obj.Type()))
				}
			}
		}
	}
	savedFr, savedRet := i.fr, i.retVals
	i.fr = fr
	i.depth++
	c, err := i.execBlock(decl.Body.List)
	rets := i.retVals
	i.depth--
	i.fr = savedFr
	i.retVals = savedRet
	if err != nil {
		return nil, err
	}
	nres := sig.Results().Len()
	if c != ctrlReturn || len(rets) != nres {
		// Fell off the end (void return) or a naked return of named
		// results; recover named results from the frame when possible.
		if c == ctrlReturn && len(rets) == 0 && nres > 0 && decl.Type.Results != nil {
			rets = rets[:0]
			for _, field := range decl.Type.Results.List {
				for _, name := range field.Names {
					if obj := node.Pkg.Info.Defs[name]; obj != nil {
						if cell, _ := fr.lookup(obj); cell != nil {
							rets = append(rets, cell.v)
						}
					}
				}
			}
		}
		for len(rets) < nres {
			rets = append(rets, opaque{})
		}
	}
	switch nres {
	case 0:
		return nil, nil
	case 1:
		return rets[0], nil
	default:
		return tupleVal{vs: rets[:nres]}, nil
	}
}

// evalStdlibCall handles calls outside the module: a small whitelist is
// evaluated concretely, everything else yields opaque results (stdlib
// code cannot touch trace state).
func (i *interp) evalStdlibCall(call *ast.CallExpr, fn *types.Func) (value, error) {
	args := make([]value, len(call.Args))
	for k, a := range call.Args {
		v, err := i.evalExpr(a)
		if err != nil {
			return nil, err
		}
		args[k] = v
	}
	for _, a := range args {
		switch a.(type) {
		case regionVal, memoryVal, registryVal:
			return nil, i.inext(call.Pos(), "trace handle escapes to %s.%s", fn.Pkg().Name(), fn.Name())
		}
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math/bits" {
		switch fn.Name() {
		case "TrailingZeros", "TrailingZeros32", "TrailingZeros64":
			if n, ok := isConcreteInt(args[0]); ok {
				if n == 0 {
					return nil, evalFail(call.Pos(), "TrailingZeros(0)")
				}
				tz := 0
				for n&1 == 0 {
					n >>= 1
					tz++
				}
				return intVal(int64(tz)), nil
			}
		}
	}
	return opaqueResults(fn), nil
}
