package metrics

import "runtime"

// SampleMem records the Go runtime's memory statistics and, where the
// platform exposes it, the process peak RSS and cumulative CPU time, as
// gauges under the "mem." and "cpu." prefixes. Peak gauges
// (mem.heap_alloc_peak_bytes, mem.rss_peak_bytes) are running maxima
// across samples, so calling SampleMem at stage boundaries yields the
// pipeline's high-water marks.
//
// runtime.ReadMemStats stops the world briefly; call this at stage
// boundaries, never per-reference.
func (r *Registry) SampleMem() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("mem.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("mem.heap_alloc_peak_bytes").SetMax(int64(ms.HeapAlloc))
	r.Gauge("mem.heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("mem.total_alloc_bytes").Set(int64(ms.TotalAlloc))
	r.Gauge("mem.mallocs").Set(int64(ms.Mallocs))
	r.Gauge("mem.num_gc").Set(int64(ms.NumGC))
	r.Gauge("mem.gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	if rss, ok := ProcessPeakRSS(); ok {
		r.Gauge("mem.rss_peak_bytes").SetMax(rss)
	}
	if cpu, ok := ProcessCPUTime(); ok {
		r.Gauge("cpu.process_ns").Set(cpu.Nanoseconds())
	}
}
