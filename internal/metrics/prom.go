package metrics

import (
	"fmt"
	"io"
	"strings"
)

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), so `GET /metrics?format=prom` works against
// any Prometheus-compatible scraper with no new dependencies:
//
//   - counters and gauges become one sample each;
//   - histograms become summaries: the precomputed p50/p90/p99 upper
//     bounds as quantile-labelled samples plus the exact _sum and _count.
//
// Dot-separated instrument paths are mangled to the Prometheus grammar
// (dots and other forbidden runes to underscores) under a "dvf_" prefix:
// "serve.analyze.latency_ns" exports as "dvf_serve_analyze_latency_ns".
// Output is deterministic (sorted by name) for a given snapshot, so it
// is golden-testable like the text encoder.
func (s Snapshot) WriteProm(w io.Writer) error {
	ew := &promWriter{w: w}
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		ew.printf("# TYPE %s counter\n", pn)
		ew.printf("%s %d\n", pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		ew.printf("# TYPE %s gauge\n", pn)
		ew.printf("%s %d\n", pn, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		ew.printf("# TYPE %s summary\n", pn)
		// Recompute from the buckets rather than trusting the encoded
		// fields, like RenderSummary: snapshots decoded from pre-quantile
		// manifests still export correctly.
		p50, p90, p99 := h.Quantiles()
		ew.printf("%s{quantile=\"0.5\"} %d\n", pn, p50)
		ew.printf("%s{quantile=\"0.9\"} %d\n", pn, p90)
		ew.printf("%s{quantile=\"0.99\"} %d\n", pn, p99)
		ew.printf("%s_sum %d\n", pn, h.Sum)
		ew.printf("%s_count %d\n", pn, h.Count)
	}
	return ew.err
}

// promName mangles a dot-separated instrument path into a legal
// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*, under a dvf_ prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("dvf_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promWriter is the sticky-error formatter for the exposition encoder.
type promWriter struct {
	w   io.Writer
	err error
}

func (e *promWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
