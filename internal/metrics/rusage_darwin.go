package metrics

// maxrssBytes: Darwin getrusage reports ru_maxrss in bytes.
const maxrssBytes = true
