package metrics

// maxrssBytes: Linux getrusage reports ru_maxrss in kilobytes.
const maxrssBytes = false
