package metrics

import "time"

// Timer records wall-clock durations into a nanosecond histogram. A nil
// Timer is a no-op whose stopwatches never even read the clock, so timing
// a section costs nothing until someone attaches a live sink.
type Timer struct {
	h *Histogram
}

// Start begins timing a section; pair with Stopwatch.Stop. On a nil timer
// the returned stopwatch is inert and Stop skips the clock read entirely.
func (t *Timer) Start() Stopwatch {
	if t == nil || t.h == nil {
		return Stopwatch{}
	}
	return Stopwatch{h: t.h, t0: time.Now()}
}

// Observe records one duration directly.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Nanoseconds())
}

// Stopwatch is one in-flight timing section handed out by Timer.Start.
type Stopwatch struct {
	h  *Histogram
	t0 time.Time
}

// Stop records the elapsed time since Start. Safe on the zero Stopwatch.
func (s Stopwatch) Stop() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.t0).Nanoseconds())
}
