// Package metrics is the pipeline's observability substrate: a
// stdlib-only, allocation-conscious registry of atomic counters, gauges,
// log2-bucketed histograms and wall-clock timers, with point-in-time
// snapshots, snapshot diffing, and deterministic JSON/text encoders.
//
// The central design constraint is that instrumentation must cost nothing
// when nobody is looking. Every instrument is nil-safe: a nil *Counter,
// *Gauge, *Histogram or *Timer accepts every method call as a no-op, and a
// nil *Registry (the Sink type) hands out nil instruments. Hot paths
// therefore hold instrument pointers unconditionally — the disabled path is
// a single predictable nil check, no interface dispatch, no allocation, no
// branch on a config struct. DESIGN.md documents this nil-sink pattern; the
// golden guard test in internal/experiments proves the enabled path does
// not perturb simulation results either.
//
// Instruments are named hierarchically with dot-separated lowercase paths
// ("trace.fanout.refs", "cache.drain_ns"). Durations are recorded as
// nanosecond histograms under a "_ns" suffix by convention.
package metrics

import (
	"sync"
	"sync/atomic"
)

// Sink is the nil-safe instrumentation handle the pipeline components
// accept: a nil Sink is valid and hands out nil (no-op) instruments, so the
// uninstrumented path stays free of overhead. A live Sink is obtained from
// New and is safe for concurrent use.
type Sink = *Registry

// Registry owns a flat namespace of instruments. Instrument lookup is
// mutex-guarded and idempotent — asking for an existing name returns the
// same instrument — so callers resolve instruments once, up front, and hot
// paths touch only the returned pointers.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Timer returns a wall-clock timer recording into the named nanosecond
// histogram (the name should carry a "_ns" suffix by convention). A nil
// registry returns a nil (no-op) timer.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name)}
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops returning zero).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. All methods are safe on a nil
// receiver (no-ops returning zero).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value, making the
// gauge a running maximum (used for peak-RSS / peak-heap tracking).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (zero on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
