//go:build !linux && !darwin

package metrics

import "time"

// ProcessCPUTime is unavailable on this platform.
func ProcessCPUTime() (time.Duration, bool) { return 0, false }

// ProcessPeakRSS is unavailable on this platform.
func ProcessPeakRSS() (int64, bool) { return 0, false }
