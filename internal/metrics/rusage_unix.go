//go:build linux || darwin

package metrics

import (
	"syscall"
	"time"
)

// ProcessCPUTime returns the process's cumulative user+system CPU time.
// The second result is false on platforms without getrusage.
func ProcessCPUTime() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	user := time.Duration(ru.Utime.Sec)*time.Second + time.Duration(ru.Utime.Usec)*time.Microsecond
	sys := time.Duration(ru.Stime.Sec)*time.Second + time.Duration(ru.Stime.Usec)*time.Microsecond
	return user + sys, true
}

// ProcessPeakRSS returns the process's peak resident set size in bytes.
// The second result is false on platforms without getrusage.
func ProcessPeakRSS() (int64, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	// Linux reports ru_maxrss in kilobytes, Darwin in bytes. The field is
	// C `long`, so it is int32 on 32-bit platforms — convert before
	// scaling, not after, or a >2GB peak would wrap.
	if maxrssBytes {
		return int64(ru.Maxrss), true
	}
	return int64(ru.Maxrss) * 1024, true
}
