package metrics

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPromGolden pins the Prometheus text-exposition encoder's exact
// output against testdata/snapshot.prom (refresh with -update).
func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicRegistry().Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "snapshot.prom")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prom encoding drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPromShape spot-checks the exposition grammar independently of the
// golden file: TYPE lines, quantile labels, and summary sum/count pairs.
func TestPromShape(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicRegistry().Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dvf_trace_fanout_refs counter\n",
		"dvf_trace_fanout_refs 1000000\n",
		"# TYPE dvf_cache_shard0_misses gauge\n",
		"dvf_cache_shard0_misses 4096\n",
		"# TYPE dvf_cache_drain_ns summary\n",
		`dvf_cache_drain_ns{quantile="0.5"}`,
		`dvf_cache_drain_ns{quantile="0.99"}`,
		"dvf_cache_drain_ns_sum 68304\n",
		"dvf_cache_drain_ns_count 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPromNameMangling covers the path-to-metric-name translation.
func TestPromNameMangling(t *testing.T) {
	cases := map[string]string{
		"serve.analyze.latency_ns": "dvf_serve_analyze_latency_ns",
		"a-b.c d":                  "dvf_a_b_c_d",
		"UPPER.case09":             "dvf_UPPER_case09",
		"colon:ok":                 "dvf_colon:ok",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromEmptySnapshot: an uninstrumented snapshot encodes to nothing,
// not an error — scrapers tolerate an empty body.
func TestPromEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := (Snapshot{}).WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty snapshot encoded %q", buf.String())
	}
}

// failWriter errors after n successful writes.
type failWriter struct{ n int }

var errSink = errors.New("sink failed")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSink
	}
	w.n--
	return len(p), nil
}

// TestPromWriteErrorSticky: the first write failure surfaces and later
// prints are suppressed.
func TestPromWriteErrorSticky(t *testing.T) {
	err := deterministicRegistry().Snapshot().WriteProm(&failWriter{n: 2})
	if !errors.Is(err, errSink) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
}
