package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SnapshotSchema versions the encoded snapshot layout; bump it whenever a
// field changes meaning so downstream tooling (dvf-bench manifests, CI
// artifacts) can refuse mismatched inputs instead of misreading them.
const SnapshotSchema = 1

// Snapshot is a frozen, encodable view of a registry. The zero Snapshot is
// valid and empty (it is what a nil registry produces).
type Snapshot struct {
	Schema     int                          `json:"schema"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current state. A nil registry
// yields an empty snapshot. Concurrent updates may land mid-capture; each
// instrument is individually consistent.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Schema: SnapshotSchema}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Diff returns the interval delta s - base: counters and histogram
// counts/sums/buckets subtract, gauges keep s's instantaneous value, and
// instruments absent from base pass through unchanged. Diffing a snapshot
// against an earlier one of the same registry isolates one stage's
// contribution from a long-lived pipeline.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := Snapshot{Schema: s.Schema}
	for name, v := range s.Counters {
		if out.Counters == nil {
			out.Counters = make(map[string]int64, len(s.Counters))
		}
		out.Counters[name] = v - base.Counters[name]
	}
	for name, v := range s.Gauges {
		if out.Gauges == nil {
			out.Gauges = make(map[string]int64, len(s.Gauges))
		}
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		if out.Histograms == nil {
			out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		}
		out.Histograms[name] = h.diff(base.Histograms[name])
	}
	return out
}

// WriteJSON encodes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as sorted, aligned "name value" lines —
// counters and gauges verbatim, histograms as a count/mean/p50/p90/p99/max
// digest. The output is deterministic for a given snapshot, so it is
// golden-testable and diff-friendly.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "%-40s count=%d mean=%.1f p50<=%d p90<=%d p99<=%d max=%d\n",
			name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
