package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestNilSinkIsFullyInert exercises every instrument through a nil
// registry: the whole surface must be a no-op, since the pipeline's
// default path runs with a nil Sink.
func TestNilSinkIsFullyInert(t *testing.T) {
	var r *Registry // the nil Sink
	c := r.Counter("c")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Errorf("nil counter value = %d, want 0", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(3)
	g.SetMax(99)
	if got := g.Value(); got != 0 {
		t.Errorf("nil gauge value = %d, want 0", got)
	}
	h := r.Histogram("h")
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram count/sum = %d/%d, want 0/0", h.Count(), h.Sum())
	}
	tm := r.Timer("t_ns")
	sw := tm.Start()
	tm.Observe(time.Second)
	sw.Stop()
	r.SampleMem()
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot is not empty: %+v", snap)
	}
}

// TestRegistryIdempotentLookup checks that re-requesting a name returns
// the same instrument, so shared counters accumulate in one place.
func TestRegistryIdempotentLookup(t *testing.T) {
	r := New()
	r.Counter("x").Add(1)
	r.Counter("x").Add(2)
	if got := r.Counter("x").Value(); got != 3 {
		t.Errorf("counter after two lookups = %d, want 3", got)
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram lookup is not idempotent")
	}
}

// TestConcurrentHammering drives every instrument type from many
// goroutines; run under -race this is the package's data-race gate, and
// the final totals must be exact (atomics lose nothing).
func TestConcurrentHammering(t *testing.T) {
	const (
		goroutines = 16
		perG       = 10000
	)
	r := New()
	c := r.Counter("hammer.counter")
	g := r.Gauge("hammer.gauge")
	h := r.Histogram("hammer.hist")
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.SetMax(int64(w*perG + i))
				h.Observe(int64(i))
				// Interleave lookups to race instrument creation too.
				r.Counter("hammer.counter").Add(0)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG-1 {
		t.Errorf("gauge max = %d, want %d", got, goroutines*perG-1)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	wantSum := int64(goroutines) * int64(perG) * int64(perG-1) / 2
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
	hs := h.snapshot()
	if hs.Min != 0 || hs.Max != perG-1 {
		t.Errorf("histogram min/max = %d/%d, want 0/%d", hs.Min, hs.Max, perG-1)
	}
	var bucketTotal int64
	for _, n := range hs.Buckets {
		bucketTotal += n
	}
	if bucketTotal != hs.Count {
		t.Errorf("bucket counts sum to %d, want %d", bucketTotal, hs.Count)
	}
}

// TestHistogramBuckets pins the log2 bucketing scheme.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketLow(0) != 0 || BucketLow(1) != 1 || BucketLow(4) != 8 {
		t.Errorf("BucketLow scheme broken: %d %d %d",
			BucketLow(0), BucketLow(1), BucketLow(4))
	}
}

// TestHistogramQuantile checks the bucket-upper-bound quantile estimate.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.snapshot()
	// p50 of 1..1000 is 500, whose bucket [256,512) has upper edge 511.
	if got := s.Quantile(0.50); got != 511 {
		t.Errorf("p50 = %d, want 511", got)
	}
	// p100 lands in bucket [512,1024) with upper edge 1023.
	if got := s.Quantile(1.0); got != 1023 {
		t.Errorf("p100 = %d, want 1023", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

// TestSnapshotQuantileFields checks that snapshot and diff denormalize
// p50/p90/p99 into the encoded form, and that Quantiles agrees with them.
func TestSnapshotQuantileFields(t *testing.T) {
	h := newHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.snapshot()
	p50, p90, p99 := s.Quantiles()
	if s.P50 != p50 || s.P90 != p90 || s.P99 != p99 {
		t.Errorf("snapshot fields (%d,%d,%d) disagree with Quantiles (%d,%d,%d)",
			s.P50, s.P90, s.P99, p50, p90, p99)
	}
	if s.P50 != 511 || s.P90 != 1023 || s.P99 != 1023 {
		t.Errorf("quantiles of 1..1000 = (%d,%d,%d), want (511,1023,1023)",
			s.P50, s.P90, s.P99)
	}
	// Diffing against a prefix must recompute quantiles from the interval
	// buckets, not carry over the lifetime values.
	base := h.snapshot()
	for i := int64(0); i < 5000; i++ {
		h.Observe(1 << 20)
	}
	d := h.snapshot().diff(base)
	if d.P50 != (1<<21)-1 {
		t.Errorf("interval p50 = %d, want %d", d.P50, int64(1<<21)-1)
	}
	if (HistogramSnapshot{}).withQuantiles().P99 != 0 {
		t.Error("empty snapshot grew a p99")
	}
}

// TestTimerObserves checks that a stopwatch lands one observation in the
// underlying nanosecond histogram.
func TestTimerObserves(t *testing.T) {
	r := New()
	tm := r.Timer("section_ns")
	sw := tm.Start()
	time.Sleep(time.Millisecond)
	sw.Stop()
	tm.Observe(2 * time.Millisecond)
	hs := r.Histogram("section_ns")
	if got := hs.Count(); got != 2 {
		t.Fatalf("timer observations = %d, want 2", got)
	}
	if hs.Sum() < int64(2*time.Millisecond) {
		t.Errorf("timer sum %dns is below the slept duration", hs.Sum())
	}
}

// TestSampleMem checks the gauges the memory sampler must always provide.
func TestSampleMem(t *testing.T) {
	r := New()
	r.SampleMem()
	s := r.Snapshot()
	for _, name := range []string{"mem.heap_alloc_bytes", "mem.heap_alloc_peak_bytes", "mem.num_gc"} {
		if _, ok := s.Gauges[name]; !ok {
			t.Errorf("SampleMem did not set %s", name)
		}
	}
	if s.Gauges["mem.heap_alloc_bytes"] <= 0 {
		t.Errorf("heap_alloc = %d, want > 0", s.Gauges["mem.heap_alloc_bytes"])
	}
}
