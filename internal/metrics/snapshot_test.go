package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden text snapshot under testdata/")

// deterministicRegistry builds a registry whose snapshot is fully
// reproducible, for the diff, JSON and golden-text tests.
func deterministicRegistry() *Registry {
	r := New()
	r.Counter("trace.fanout.refs").Add(1000000)
	r.Counter("trace.fanout.batches").Add(245)
	r.Gauge("cache.shard0.misses").Set(4096)
	r.Gauge("experiments.workers").Set(8)
	h := r.Histogram("cache.drain_ns")
	for _, v := range []int64{0, 1, 3, 900, 900, 1500, 65000} {
		h.Observe(v)
	}
	tm := r.Timer("experiments.task_ns")
	tm.Observe(1500 * time.Microsecond)
	tm.Observe(2500 * time.Microsecond)
	return r
}

// TestSnapshotDiffArithmetic checks the interval semantics: counters and
// histogram counts/sums/buckets subtract, gauges keep the newer value,
// instruments missing from the base pass through.
func TestSnapshotDiffArithmetic(t *testing.T) {
	r := deterministicRegistry()
	base := r.Snapshot()

	r.Counter("trace.fanout.refs").Add(500)
	r.Gauge("cache.shard0.misses").Set(5000)
	r.Histogram("cache.drain_ns").Observe(2)
	r.Counter("stage.only_after").Add(7)

	d := r.Snapshot().Diff(base)
	if got := d.Counters["trace.fanout.refs"]; got != 500 {
		t.Errorf("diffed counter = %d, want 500", got)
	}
	if got := d.Counters["trace.fanout.batches"]; got != 0 {
		t.Errorf("unchanged counter diff = %d, want 0", got)
	}
	if got := d.Counters["stage.only_after"]; got != 7 {
		t.Errorf("new counter diff = %d, want 7", got)
	}
	if got := d.Gauges["cache.shard0.misses"]; got != 5000 {
		t.Errorf("diffed gauge = %d, want newer value 5000", got)
	}
	h := d.Histograms["cache.drain_ns"]
	if h.Count != 1 || h.Sum != 2 {
		t.Errorf("diffed histogram count/sum = %d/%d, want 1/2", h.Count, h.Sum)
	}
	if got := h.Buckets[bucketIndex(2)]; got != 1 {
		t.Errorf("diffed bucket[%d] = %d, want 1", bucketIndex(2), got)
	}
	if len(h.Buckets) != 1 {
		t.Errorf("diffed histogram kept %d unchanged buckets, want 0: %v", len(h.Buckets), h.Buckets)
	}
	if unchanged := d.Histograms["experiments.task_ns"]; unchanged.Count != 0 {
		t.Errorf("unchanged histogram diff count = %d, want 0", unchanged.Count)
	}
}

// TestSnapshotJSONRoundTrip encodes a snapshot and decodes it back,
// requiring exact structural equality — the property the dvf-bench
// manifest and its -compare mode depend on.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := deterministicRegistry().Snapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SnapshotSchema {
		t.Errorf("schema = %d, want %d", back.Schema, SnapshotSchema)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("JSON round trip not identical:\nbefore %+v\nafter  %+v", s, back)
	}
}

// TestSnapshotTextGolden pins the text encoder's exact output.
func TestSnapshotTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicRegistry().Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "snapshot.txt")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("text encoding drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestDiffOfEqualSnapshotsIsZero checks that X.Diff(X) zeroes every
// counter and histogram.
func TestDiffOfEqualSnapshotsIsZero(t *testing.T) {
	r := deterministicRegistry()
	s := r.Snapshot()
	d := s.Diff(s)
	for name, v := range d.Counters {
		if v != 0 {
			t.Errorf("self-diff counter %s = %d, want 0", name, v)
		}
	}
	for name, h := range d.Histograms {
		if h.Count != 0 || h.Sum != 0 || len(h.Buckets) != 0 {
			t.Errorf("self-diff histogram %s not zero: %+v", name, h)
		}
	}
}
