package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of every histogram: bucket 0 holds
// non-positive observations, bucket i (1 <= i <= 64) holds values v with
// bits.Len64(v) == i, i.e. the half-open range [2^(i-1), 2^i). Fixed log2
// bucketing keeps Observe at two atomic adds with no per-histogram
// configuration, at a worst-case relative error of 2x on quantile
// estimates — plenty for the order-of-magnitude questions (ns per ref,
// batch occupancy, stall duration) the pipeline asks.
const histBuckets = 65

// Histogram accumulates int64 observations into fixed log2 buckets, with
// exact sum, count, min and max. All methods are safe for concurrent use
// and safe on a nil receiver (no-ops).
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the smallest value landing in bucket i (0 for bucket 0).
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (zero on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (zero on a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot captures the histogram's state. Concurrent Observe calls may
// land between the field reads; each field is individually consistent.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64)
			}
			s.Buckets[i] = n
		}
	}
	return s.withQuantiles()
}

// HistogramSnapshot is the frozen, encodable form of a Histogram. Buckets
// maps bucket index (see BucketLow) to observation count; empty buckets are
// omitted. Min and Max are only meaningful when Count > 0, and after a Diff
// they describe the newer snapshot's whole lifetime, not the interval.
// P50/P90/P99 are the precomputed Quantile upper bounds — denormalized
// into the encoding (additively, so schema-1 consumers and committed
// baselines keep decoding) so dashboards and bench reports read tail
// latency without reimplementing the bucket walk.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min,omitempty"`
	Max     int64         `json:"max,omitempty"`
	P50     int64         `json:"p50,omitempty"`
	P90     int64         `json:"p90,omitempty"`
	P99     int64         `json:"p99,omitempty"`
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// withQuantiles fills the denormalized P50/P90/P99 fields from the bucket
// counts; snapshot and diff both route through it so the fields always
// describe the snapshot they travel with.
func (s HistogramSnapshot) withQuantiles() HistogramSnapshot {
	if s.Count > 0 {
		s.P50, s.P90, s.P99 = s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99)
	}
	return s
}

// Quantiles returns the p50/p90/p99 upper bounds in one call.
func (s HistogramSnapshot) Quantiles() (p50, p90, p99 int64) {
	return s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99)
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) from the
// bucket counts: the upper edge of the bucket containing the q-th
// observation, exact to within the 2x bucket width.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += s.Buckets[i]
		if seen >= rank {
			if i == 0 {
				return 0
			}
			upper := int64(math.MaxInt64)
			if i < 64 {
				upper = (int64(1) << i) - 1
			}
			return upper
		}
	}
	return s.Max
}

// diff returns the per-interval delta s - base: counts, sums and buckets
// subtract; Min and Max carry over from s (the newer snapshot) because
// extrema are not recoverable for an interval.
func (s HistogramSnapshot) diff(base HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: s.Count - base.Count,
		Sum:   s.Sum - base.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	for i, n := range s.Buckets {
		if d := n - base.Buckets[i]; d != 0 {
			if out.Buckets == nil {
				out.Buckets = make(map[int]int64)
			}
			out.Buckets[i] = d
		}
	}
	return out.withQuantiles()
}
