// Design space: sweep an application across candidate machines — cache
// geometries crossed with memory-protection mechanisms — and rank the
// configurations by vulnerability.
//
// This is the exploration workflow the paper inherits from Aspen ("rapid
// exploration of new algorithm and architectures") with resilience as the
// objective: each cell costs one model evaluation, so the whole
// 4-cache x 3-protection sweep finishes in well under a second, where a
// fault-injection campaign per cell would take hours.
//
// Run with:
//
//	go run ./examples/design-space
package main

import (
	"fmt"
	"log"

	"github.com/resilience-models/dvf/internal/core"
	"github.com/resilience-models/dvf/internal/dvf"
)

func main() {
	kernel, err := core.NewKernel("MG")
	if err != nil {
		log.Fatal(err)
	}

	caches := []core.CacheConfig{
		core.Cache16KB, core.Cache128KB, core.Cache1MB, core.Cache8MB,
	}
	protections := []dvf.ECC{dvf.NoECC, dvf.SECDED, dvf.Chipkill}

	res, err := core.Explore(kernel, caches, protections)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	best, err := res.Best()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmost resilient configuration: %s with %s (DVF_a = %.4g)\n",
		best.Cache.Name, best.Protection.Name, best.DVFa)
	fmt.Println("\nreading the table: protection strength dominates (chipkill's five")
	fmt.Println("orders of magnitude in FIT dwarf any cache effect), while within a")
	fmt.Println("protection class a larger cache reduces DVF by cutting N_ha — the")
	fmt.Println("two-knob trade-off the paper's Section V explores one knob at a time.")
}
