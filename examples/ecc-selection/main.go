// ECC selection: pick the weakest sufficient protection mechanism per data
// structure, given a DVF budget.
//
// The paper's Section III-A lists this decision as a primary use of DVF:
// "we use DVF to decide whether a specific resilience mechanism provides
// sufficient protection, given a pre-defined DVF target". This example
// analyzes the conjugate-gradient kernel, then walks its structures from
// most to least vulnerable assigning No-ECC, SECDED or chipkill — the
// selective-protection design the paper motivates in its introduction.
//
// Run with:
//
//	go run ./examples/ecc-selection
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/resilience-models/dvf/internal/core"
	"github.com/resilience-models/dvf/internal/dvf"
)

func main() {
	kernel, err := core.NewKernel("CG")
	if err != nil {
		log.Fatal(err)
	}
	report, err := core.AnalyzeKernel(kernel, core.Cache1MB, core.NoECC)
	if err != nil {
		log.Fatal(err)
	}

	// Budget: each structure must stay below 1% of the unprotected
	// application DVF.
	target := report.Total() / 100
	fmt.Printf("CG on the 1MB cache: unprotected DVF_a = %.4g, per-structure target %.4g\n\n",
		report.Total(), target)

	structs := make([]dvf.StructureDVF, len(report.Structures))
	copy(structs, report.Structures)
	sort.Slice(structs, func(i, j int) bool { return structs[i].DVF > structs[j].DVF })

	fmt.Printf("%-8s %14s %20s %14s %10s\n", "struct", "DVF", "chosen protection", "with ECC", "overhead")
	var totalProtected float64
	for _, s := range structs {
		mech, point, err := core.SelectProtection(report.ExecHours, s.Bytes, s.NHa, target)
		if err != nil {
			fmt.Printf("%-8s %14.4g %20s\n", s.Name, s.DVF, "NO MECHANISM SUFFICES")
			totalProtected += s.DVF
			continue
		}
		fmt.Printf("%-8s %14.4g %20s %14.4g %9.0f%%\n",
			s.Name, s.DVF, mech.Name, point.DVF, point.DegradationPct)
		totalProtected += point.DVF
	}
	fmt.Printf("\nselectively protected DVF_a = %.4g (%.0fx below unprotected)\n",
		totalProtected, report.Total()/totalProtected)
	fmt.Println("note how the small vectors need no ECC at all while the matrix")
	fmt.Println("demands chipkill — the cost argument for selective protection.")
}
