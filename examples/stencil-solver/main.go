// Stencil solver: model the resilience of a user-written 3-D Jacobi
// stencil without running or even writing the solver.
//
// This is the CGPMAC workflow on code that is not one of the built-in
// kernels: describe the grid's access template from the pseudocode (each
// interior cell reads its six neighbors, then writes itself), let the
// template model count main-memory accesses per cache configuration, and
// attach the DVF metric. The sweep shows how the working set falling out
// of cache changes both traffic and vulnerability — exactly the kind of
// design-space exploration the paper's Section III-A lists.
//
// Run with:
//
//	go run ./examples/stencil-solver
package main

import (
	"fmt"
	"log"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/patterns"
)

const (
	n        = 48 // grid points per axis
	elemSize = 8  // float64 cells
	sweeps   = 4  // Jacobi iterations
)

// stencilTemplate feeds the 7-point stencil's element template through the
// two-step reuse-distance algorithm for one cache geometry.
func stencilTemplate(cfg cache.Config) (float64, error) {
	ctr := patterns.NewTemplateCounter(cfg.Lines(), false)
	visit := func(elem int) {
		first := int64(elem) * elemSize / int64(cfg.LineSize)
		last := (int64(elem)*elemSize + elemSize - 1) / int64(cfg.LineSize)
		for b := first; b <= last; b++ {
			ctr.Visit(b)
		}
	}
	at := func(i, j, k int) int { return (i*n+j)*n + k }
	for s := 0; s < sweeps; s++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				for k := 1; k < n-1; k++ {
					visit(at(i-1, j, k))
					visit(at(i+1, j, k))
					visit(at(i, j-1, k))
					visit(at(i, j+1, k))
					visit(at(i, j, k-1))
					visit(at(i, j, k+1))
					visit(at(i, j, k))
				}
			}
		}
	}
	return float64(ctr.Misses()), nil
}

func main() {
	gridBytes := int64(n) * n * n * elemSize
	grid := patterns.Func{
		Name:  "template",
		Bytes: gridBytes,
		F:     stencilTemplate,
	}
	flops := float64(sweeps) * float64((n-2)*(n-2)*(n-2)) * 7

	fmt.Printf("3-D Jacobi stencil, %d^3 grid (%d KB), %d sweeps\n",
		n, gridBytes>>10, sweeps)
	fmt.Printf("%-22s %14s %12s %14s\n", "cache", "N_ha", "T (ms)", "DVF(grid)")
	for _, cfg := range cache.ProfilingConfigs() {
		nha, err := grid.MemoryAccesses(cfg)
		if err != nil {
			log.Fatal(err)
		}
		seconds := dvf.DefaultCostModel.ExecSeconds(0, nha, flops)
		d := dvf.ForStructure(dvf.FITNoECC, seconds/3600, gridBytes, nha)
		fmt.Printf("%-22s %14.0f %12.3f %14.6g\n", cfg.Name, nha, seconds*1e3, d)
	}

	fmt.Println("\nreading the table: once the grid (~864 KB) no longer fits the")
	fmt.Println("cache, every sweep re-streams it from memory — N_ha jumps by the")
	fmt.Println("sweep count and the vulnerability follows.")
}
