// Quickstart: compute the data vulnerability factor of a kernel's data
// structures in a dozen lines.
//
// The flow is the paper's Figure 3: pick an application (here the built-in
// vector-multiplication kernel), pick a machine (a Table IV cache and a
// Table VII failure rate), and ask for the DVF report. The report ranks
// the kernel's data structures by vulnerability — the input a selective
// protection scheme needs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/resilience-models/dvf/internal/core"
)

func main() {
	kernel, err := core.NewKernel("VM")
	if err != nil {
		log.Fatal(err)
	}

	// Unprotected DRAM (5000 FIT/Mbit) behind an 8 MB last-level cache.
	report, err := core.AnalyzeKernel(kernel, core.Cache8MB, core.NoECC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render())

	// The same application with chipkill-protected memory: the DVF drops
	// by the ratio of the failure rates, quantifying what the protection
	// mechanism buys (the Section V-B use case in miniature).
	protected, err := core.AnalyzeKernel(kernel, core.Cache8MB, core.Chipkill)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith chipkill: DVF_a = %.4g (%.0fx lower)\n",
		protected.Total(), report.Total()/protected.Total())

	// Validate the analytical model against the cache simulator, as the
	// paper does in Figure 4.
	rows, err := core.VerifyKernel(kernel, core.CacheSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmodel verification on the small cache:")
	for _, r := range rows {
		fmt.Printf("  %-2s model %8.0f  simulator %8.0f  error %+5.1f%%\n",
			r.Structure, r.Model, r.Simulated, r.ErrorPct())
	}
}
