// Aspen model: author an extended-Aspen resilience model as source text,
// compile it, and explore it across machines — the full Section III-D
// workflow, including the paper's Barnes-Hut random-pattern example
// (Algorithm 2's {1000, 32, 200, 1000, 1.0} tuple) and a multi-grid
// smoother template.
//
// The model file is also written next to the binary's working directory as
// barnes-hut.aspen so it can be re-examined with:
//
//	go run ./cmd/aspenc -sweep barnes-hut.aspen
//
// Run with:
//
//	go run ./examples/aspen-model
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/resilience-models/dvf/internal/aspen"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/core"
)

const source = `
// Barnes-Hut N-body resilience model (Algorithm 2 of the DVF paper).
// T is the quadtree: 1000 nodes of 32 bytes, ~200 visited per of the
// 1000 per-particle traversals, with the whole cache available (r = 1.0).
// P is the particle array, streamed during construction and force phases.
model barnes_hut {
    param nodes     = 1000
    param particles = 1000
    param visited   = 200

    machine {
        cache { assoc 4  sets 64  line 32 }   // the paper's small cache
        memory { fit 5000 }                   // unprotected DRAM
    }

    data T { size 32*nodes     pattern random(nodes, 32, visited, particles, 1.0) }
    data P { size 32*particles pattern streaming(32, particles, 1, 2) }

    kernel force { flops 12*visited*particles }
}
`

func main() {
	// Compile once through the façade.
	ev, err := core.AnalyzeSource(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("evaluated on the model's own machine block:")
	fmt.Print(ev.Render())

	// Persist the source and re-load it the way aspenc would.
	if err := os.WriteFile("barnes-hut.aspen", []byte(source), 0o644); err != nil {
		log.Fatal(err)
	}
	raw, err := os.ReadFile("barnes-hut.aspen")
	if err != nil {
		log.Fatal(err)
	}
	model, err := aspen.Parse(string(raw))
	if err != nil {
		log.Fatal(err)
	}
	if err := aspen.Check(model); err != nil {
		log.Fatal(err)
	}

	// Explore: how does the tree's vulnerability respond to cache size?
	fmt.Println("\ncache sweep (same model, Table IV profiling caches):")
	fmt.Printf("%-22s %14s %14s\n", "cache", "N_ha(T)", "DVF(T)")
	for _, cfg := range cache.ProfilingConfigs() {
		sweep, err := aspen.Evaluate(model, aspen.WithCache(cfg))
		if err != nil {
			log.Fatal(err)
		}
		tRes, err := sweep.Structure("T")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %14.0f %14.6g\n", cfg.Name, tRes.NHa, tRes.DVF)
	}
	fmt.Println("\nwrote barnes-hut.aspen — try: go run ./cmd/aspenc -sweep barnes-hut.aspen")
}
