package dvf_test

// Top-level smoke tests: quick end-to-end passes over the reproduction's
// headline results, cheap enough to run on every change (the full gate is
// cmd/dvf-repro and the benchmarks).

import (
	"math"
	"testing"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/core"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/experiments"
	"github.com/resilience-models/dvf/internal/kernels"
)

func TestSmokeVerificationBound(t *testing.T) {
	// One cheap kernel per pattern class against the small cache.
	for _, k := range []kernels.Kernel{
		kernels.NewVM(1000),
		kernels.NewFT(2048),
		kernels.NewMC(1000),
	} {
		rows, err := experiments.VerifyKernel(k, cache.Small)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if e := math.Abs(r.ErrorPct()); e > 15 {
				t.Errorf("%s/%s: %.1f%% error", r.Kernel, r.Structure, e)
			}
		}
	}
}

func TestSmokeFig7Minimum(t *testing.T) {
	res, err := experiments.RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		best, err := dvf.MinPoint(s.Points)
		if err != nil {
			t.Fatal(err)
		}
		if best.DegradationPct != 5 {
			t.Errorf("%s minimum at %.0f%%, want 5%%", s.Mechanism.Name, best.DegradationPct)
		}
	}
}

func TestSmokeFacadeEndToEnd(t *testing.T) {
	k, err := core.NewKernel("VM")
	if err != nil {
		t.Fatal(err)
	}
	report, err := core.AnalyzeKernel(k, core.Cache8MB, core.NoECC)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total() <= 0 {
		t.Error("non-positive application DVF")
	}
	ev, err := core.AnalyzeSource(`
model smoke {
    machine { cache { assoc 4 sets 64 line 32 } memory { fit 5000 } }
    data A { size 8192  pattern streaming(8, 1024, 1) }
}`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ev.Structure("A")
	if err != nil {
		t.Fatal(err)
	}
	if a.NHa != 256 {
		t.Errorf("DSL smoke: N_ha = %g, want 256", a.NHa)
	}
}
