// Command dvf-lint runs the repository's own static-analysis suite
// (internal/analysis) over the named packages and fails the build on any
// finding. The checkers mechanically enforce the invariants the test
// suite can only probe dynamically: the nil-sink observability contract,
// determinism of the golden-output packages (including clock taint
// laundered through helpers in other packages), allocation-free
// //dvf:hotpath call paths, mutex discipline, enum-switch exhaustiveness,
// atomic-access discipline, error-result hygiene and goroutine join
// paths.
//
// Usage:
//
//	dvf-lint ./...                      # whole module, all checkers
//	dvf-lint -only nilsink,errdrop ./internal/... ./cmd/...
//	dvf-lint -fix ./...                 # apply suggested fixes in place
//	dvf-lint -sarif lint.sarif ./...    # also write SARIF 2.1.0
//	dvf-lint -write-baseline ./...      # accept current findings
//	dvf-lint -list                      # show the registered checkers
//
// Findings print one per line as "file:line: [checker] message".
//
// Exit status separates outcome classes so CI can tell them apart:
// 0 when the analysis ran everywhere and found nothing, 1 when the
// analysis ran and found something, 2 on usage errors or when any
// package failed to load or type-check — load errors name the package
// on stderr and analysis continues over the packages that did load, but
// a partial run never masquerades as a clean one.
//
// Suppressions are in-source and audited: //dvf:allow <checker> <reason>
// on (or directly above) the flagged line. For adopting a new checker on
// a codebase with pre-existing findings, -baseline FILE suppresses the
// findings recorded in FILE (default .dvf-lint-baseline.json when
// present) and -write-baseline snapshots the current findings into it;
// the match is line-insensitive so the file only ratchets down.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/resilience-models/dvf/internal/analysis"
	"github.com/resilience-models/dvf/internal/analysis/checkers"
	"github.com/resilience-models/dvf/internal/obs"
)

// defaultBaseline is consulted when -baseline is not set explicitly.
const defaultBaseline = ".dvf-lint-baseline.json"

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvf-lint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], cwd, os.Stdout, os.Stderr))
}

// run is the whole CLI, parameterized over its inputs and output streams
// so main_test.go can drive it against fixture modules without spawning
// processes.
func run(args []string, cwd string, stdout, stderr io.Writer) int {
	errorf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "dvf-lint: "+format+"\n", a...)
	}

	fs := flag.NewFlagSet("dvf-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of checkers to run (default: all)")
	list := fs.Bool("list", false, "list registered checkers and exit")
	fix := fs.Bool("fix", false, "apply the first suggested fix of each finding and rewrite the files")
	sarifOut := fs.String("sarif", "", "write a SARIF 2.1.0 report to this file ('-' for stdout)")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this baseline file (default: "+defaultBaseline+" when present)")
	writeBaseline := fs.Bool("write-baseline", false, "snapshot current findings into the baseline file and exit clean")
	jobs := fs.Int("jobs", 0, "number of packages analyzed concurrently (0 = GOMAXPROCS)")
	timings := fs.Bool("timings", false, "print a per-checker wall-time and findings table on stderr (and record it in the SARIF run properties)")
	o := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	defer o.Start()()

	if *list {
		for _, a := range checkers.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := checkers.Select(*only)
	if err != nil {
		errorf("%v", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		errorf("%v", err)
		return 2
	}
	paths, err := loader.Expand(cwd, patterns)
	if err != nil {
		errorf("%v", err)
		return 2
	}
	if len(paths) == 0 {
		errorf("no packages matched")
		return 2
	}

	// Load everything first; a package that fails to load is reported to
	// stderr with its import path and the rest is still analyzed, so one
	// broken package does not hide the findings of fifty good ones. The
	// exit status still reports the failure.
	var pkgs []*analysis.Package
	loadFailed := false
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			errorf("loading %s: %v", p, err)
			loadFailed = true
			continue
		}
		pkgs = append(pkgs, pkg)
	}

	var tm *analysis.Timings
	if *timings {
		tm = analysis.NewTimings()
	}
	var diags []analysis.Diagnostic
	if len(pkgs) > 0 {
		diags, err = analysis.RunParallelTimed(loader.Program(), pkgs, analyzers, false, *jobs, tm)
		if err != nil {
			errorf("%v", err)
			return 2
		}
	}
	if tm != nil {
		fmt.Fprint(stderr, tm.Table())
	}

	// Resolve the baseline: an explicit -baseline must exist; the default
	// file is optional. Relative paths are cwd-relative.
	blPath := *baselinePath
	if blPath == "" {
		if _, err := os.Stat(filepath.Join(cwd, defaultBaseline)); err == nil {
			blPath = defaultBaseline
		}
	}
	if blPath != "" && !filepath.IsAbs(blPath) {
		blPath = filepath.Join(cwd, blPath)
	}

	if *writeBaseline {
		if blPath == "" {
			blPath = filepath.Join(cwd, defaultBaseline)
		}
		bl := analysis.NewBaseline(diags, cwd)
		// The baseline is a shrink-only ratchet: re-recording may drop or
		// reduce entries but never add them. New findings are fixed, not
		// accepted; adopting from scratch means deleting the file first.
		if old, err := analysis.ReadBaseline(blPath); err == nil {
			if grown := bl.Growth(old); len(grown) > 0 {
				for _, e := range grown {
					errorf("baseline would grow: %s: [%s] %s (x%d)", e.File, e.Checker, e.Message, e.Count)
				}
				errorf("refusing to grow %s; fix the new findings or delete the baseline to re-adopt", blPath)
				return 1
			}
		} else if !os.IsNotExist(err) {
			errorf("%v", err)
			return 2
		}
		if err := bl.Write(blPath); err != nil {
			errorf("%v", err)
			return 2
		}
		errorf("recorded %d finding(s) in %s", len(diags), blPath)
		if loadFailed {
			return 2
		}
		return 0
	}

	suppressedCount := 0
	if blPath != "" {
		bl, err := analysis.ReadBaseline(blPath)
		if err != nil {
			errorf("%v", err)
			return 2
		}
		if err := validateBaselineCheckers(bl, blPath); err != nil {
			errorf("%v", err)
			return 2
		}
		var suppressed []analysis.Diagnostic
		diags, suppressed = bl.Filter(diags, cwd)
		suppressedCount = len(suppressed)
	}

	if *sarifOut != "" {
		if err := writeSarif(*sarifOut, stdout, diags, analyzers, cwd, tm); err != nil {
			errorf("%v", err)
			return 2
		}
	}

	if *fix {
		diags = applyFixes(loader, diags, stderr)
	}

	for _, d := range diags {
		fmt.Fprintln(stdout, relDiag(cwd, d))
	}
	if suppressedCount > 0 {
		errorf("%d finding(s) suppressed by %s", suppressedCount, blPath)
	}
	switch {
	case loadFailed:
		return 2
	case len(diags) > 0:
		errorf("%d finding(s) in %d package(s)", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// validateBaselineCheckers rejects baseline entries naming checkers the
// registry does not know: a typo there would silently suppress nothing
// forever, and a removed checker's entries are stale weight.
func validateBaselineCheckers(bl *analysis.Baseline, path string) error {
	known := map[string]bool{"directive": true}
	for _, a := range checkers.All() {
		known[a.Name] = true
	}
	for _, e := range bl.Findings {
		if !known[e.Checker] {
			return fmt.Errorf("%s names unknown checker %q (entry %s: %s)", path, e.Checker, e.File, e.Message)
		}
	}
	return nil
}

// applyFixes rewrites the files of every finding that carries a
// suggested fix and returns the findings that remain (those without
// one). Fixed files are listed on stderr.
func applyFixes(loader *analysis.Loader, diags []analysis.Diagnostic, stderr io.Writer) []analysis.Diagnostic {
	var fixable, remaining []analysis.Diagnostic
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			fixable = append(fixable, d)
		} else {
			remaining = append(remaining, d)
		}
	}
	if len(fixable) == 0 {
		return remaining
	}
	fixed, err := analysis.ApplyFixes(loader.Fset, fixable)
	if err != nil {
		fmt.Fprintf(stderr, "dvf-lint: applying fixes: %v\n", err)
		return diags // leave everything reported; nothing was written
	}
	files, err := analysis.WriteFixes(fixed)
	if err != nil {
		fmt.Fprintf(stderr, "dvf-lint: writing fixes: %v\n", err)
		return diags
	}
	for _, f := range files {
		fmt.Fprintf(stderr, "dvf-lint: fixed %s\n", f)
	}
	return remaining
}

// writeSarif renders the report to path ("-" = stdout). A non-nil tm
// lands its per-checker cost table in the run's property bag.
func writeSarif(path string, stdout io.Writer, diags []analysis.Diagnostic, analyzers []*analysis.Analyzer, cwd string, tm *analysis.Timings) error {
	report := analysis.SarifReport(diags, analyzers, cwd)
	if tm != nil && len(report.Runs) > 0 {
		report.Runs[0].Properties = tm.SarifProperties()
	}
	if path == "-" {
		return report.Write(stdout)
	}
	if !filepath.IsAbs(path) {
		path = filepath.Join(cwd, path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.Write(f); err != nil {
		_ = f.Close() // the write error is the one worth returning
		return err
	}
	return f.Close()
}

// relDiag renders one finding with a cwd-relative path for clickable,
// stable output.
func relDiag(cwd string, d analysis.Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
		file = rel
	}
	return fmt.Sprintf("%s:%d: [%s] %s", file, d.Pos.Line, d.Checker, d.Message)
}
