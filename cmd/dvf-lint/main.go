// Command dvf-lint runs the repository's own static-analysis suite
// (internal/analysis) over the named packages and fails the build on any
// finding. The checkers mechanically enforce the invariants the test
// suite can only probe dynamically: the nil-sink observability contract,
// determinism of the golden-output packages, atomic-access discipline,
// error-result hygiene and goroutine join paths.
//
// Usage:
//
//	dvf-lint ./...                      # whole module, all checkers
//	dvf-lint -only nilsink,errdrop ./internal/... ./cmd/...
//	dvf-lint -list                      # show the registered checkers
//
// Findings print one per line as "file:line: [checker] message" and the
// exit status is 1 when anything was found, 2 on usage or load errors.
// Suppressions are in-source and audited: //dvf:allow <checker> <reason>
// on (or directly above) the flagged line.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/resilience-models/dvf/internal/analysis"
	"github.com/resilience-models/dvf/internal/analysis/checkers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvf-lint: ")
	only := flag.String("only", "", "comma-separated subset of checkers to run (default: all)")
	list := flag.Bool("list", false, "list registered checkers and exit")
	flag.Parse()

	if *list {
		for _, a := range checkers.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := checkers.Select(*only)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	paths, err := loader.Expand(cwd, patterns)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	if len(paths) == 0 {
		log.Println("no packages matched")
		os.Exit(2)
	}

	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, analyzers, false)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(relDiag(cwd, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dvf-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// relDiag renders one finding with a cwd-relative path for clickable,
// stable output.
func relDiag(cwd string, d analysis.Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
		file = rel
	}
	return fmt.Sprintf("%s:%d: [%s] %s", file, d.Pos.Line, d.Checker, d.Message)
}
