// Package broken fails to type-check: the CLI must report the load
// error on stderr with the package path and exit 2.
package broken

func Oops() int {
	return undefinedIdentifier
}
