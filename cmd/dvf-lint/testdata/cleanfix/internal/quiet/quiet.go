// Package quiet violates nothing: the CLI must exit 0 over it.
package quiet

// Sum is plain, deterministic arithmetic.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
