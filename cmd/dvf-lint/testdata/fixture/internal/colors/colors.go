// Package colors is the dvf-lint CLI test fixture. Every finding in it
// carries a suggested fix — a default-less enum switch with missing
// cases and a stale //dvf:allow directive — so `dvf-lint -fix` drives
// the module from exit 1 to a clean, gofmt-idempotent exit 0.
package colors

// Color is a module-local enum the exhaustive checker tracks.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

// Name labels a color but misses two constants.
func Name(c Color) string {
	switch c {
	case Red:
		return "red"
	}
	return "unknown"
}

// Last returns the highest color; the directive above the return
// suppresses nothing and should be deleted by -fix.
func Last() int {
	//dvf:allow exhaustive the switch above already covers every color
	return int(Blue)
}
