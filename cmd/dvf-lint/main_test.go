package main

import (
	"bytes"
	"encoding/json"
	"go/format"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint drives the CLI in-process against a fixture directory.
func runLint(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, dir, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// copyFixture clones a testdata module into a temp dir so -fix and
// -write-baseline runs never mutate the checked-in fixture.
func copyFixture(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func fixtureDir(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestExitFindings: findings print to stdout as file:line: [checker]
// message and the process exits 1.
func TestExitFindings(t *testing.T) {
	code, stdout, stderr := runLint(t, fixtureDir(t), "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "[exhaustive]") || !strings.Contains(stdout, "misses Green, Blue") {
		t.Errorf("stdout misses the exhaustive finding:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[directive]") {
		t.Errorf("stdout misses the stale-directive finding:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr misses the summary line:\n%s", stderr)
	}
}

// TestExitClean: a module with nothing to report exits 0.
func TestExitClean(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "cleanfix"))
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runLint(t, dir, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if strings.TrimSpace(stdout) != "" {
		t.Errorf("clean run printed findings:\n%s", stdout)
	}
}

// TestExitLoadError: a package that fails to type-check is named on
// stderr with its import path and the run exits 2.
func TestExitLoadError(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "brokenfix"))
	if err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runLint(t, dir, "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "loading") || !strings.Contains(stderr, "internal/broken") {
		t.Errorf("stderr must name the failing package:\n%s", stderr)
	}
}

// TestUsageErrors: unknown flags and unknown checkers exit 2.
func TestUsageErrors(t *testing.T) {
	if code, _, _ := runLint(t, fixtureDir(t), "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, stderr := runLint(t, fixtureDir(t), "-only", "nope", "./..."); code != 2 || !strings.Contains(stderr, "unknown checker") {
		t.Errorf("unknown checker: exit %d, stderr %q", code, stderr)
	}
}

// TestList: -list prints the registry and exits 0.
func TestList(t *testing.T) {
	code, stdout, _ := runLint(t, fixtureDir(t), "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "exhaustive", "hotalloc", "locksafe", "nilsink"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list misses %s:\n%s", name, stdout)
		}
	}
}

// TestTimings: -timings prints the per-checker cost table on stderr and
// lands the same rows in the SARIF run's property bag.
func TestTimings(t *testing.T) {
	code, stdout, stderr := runLint(t, fixtureDir(t), "-timings", "-sarif", "-", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	for _, want := range []string{"checker", "wall", "findings", "exhaustive", "total"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("timings table misses %q:\n%s", want, stderr)
		}
	}
	var log struct {
		Runs []struct {
			Properties map[string]any `json:"properties"`
		} `json:"runs"`
	}
	// Findings follow the SARIF document on stdout; decode just the JSON.
	if err := json.NewDecoder(strings.NewReader(stdout)).Decode(&log); err != nil {
		t.Fatalf("SARIF on stdout does not parse: %v", err)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("expected 1 SARIF run, got %d", len(log.Runs))
	}
	if _, ok := log.Runs[0].Properties["dvfLintTimings/v1"]; !ok {
		t.Errorf("SARIF run properties miss dvfLintTimings/v1: %v", log.Runs[0].Properties)
	}
}

// TestLiveRepoClean is the self-hosting assertion: the repository's own
// tree lints clean under every registered checker, with no baseline
// file absorbing findings. A new checker that fires on the live tree —
// or a code change that trips an existing one — fails here, not in CI
// review.
func TestLiveRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint run")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repo root not found at %s", root)
	}
	if _, err := os.Stat(filepath.Join(root, ".dvf-lint-baseline.json")); err == nil {
		t.Errorf("a baseline file exists at the repo root; the tree must lint clean without one")
	}
	code, stdout, stderr := runLint(t, root, "./...")
	if code != 0 {
		t.Errorf("live repo lint exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

// TestFixRoundTrip is the -fix contract end to end: applying fixes
// leaves the module finding-free, buildable (the rewrite parses) and
// gofmt-idempotent.
func TestFixRoundTrip(t *testing.T) {
	dir := copyFixture(t, fixtureDir(t))
	code, _, stderr := runLint(t, dir, "-fix", "./...")
	if code != 0 {
		t.Fatalf("-fix exit = %d, want 0 (every fixture finding is fixable)\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "fixed ") {
		t.Errorf("stderr must list rewritten files:\n%s", stderr)
	}

	fixed := filepath.Join(dir, "internal", "colors", "colors.go")
	src, err := os.ReadFile(fixed)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"case Green:", "case Blue:"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("fix did not insert %q:\n%s", want, src)
		}
	}
	if strings.Contains(string(src), "dvf:allow exhaustive") {
		t.Errorf("stale directive survived -fix:\n%s", src)
	}
	formatted, err := format.Source(src)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if !bytes.Equal(formatted, src) {
		t.Errorf("fixed file is not gofmt-idempotent")
	}

	// The ratchet: a second run over the fixed tree is clean.
	if code, stdout, stderr := runLint(t, dir, "./..."); code != 0 {
		t.Errorf("re-run after -fix: exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

// TestBaselineWorkflow: -write-baseline snapshots the findings, after
// which a plain run auto-detects the file and exits clean.
func TestBaselineWorkflow(t *testing.T) {
	dir := copyFixture(t, fixtureDir(t))
	code, _, stderr := runLint(t, dir, "-write-baseline", "./...")
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if _, err := os.Stat(filepath.Join(dir, defaultBaseline)); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}

	code, stdout, stderr := runLint(t, dir, "./...")
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "suppressed by") {
		t.Errorf("stderr must report the suppression count:\n%s", stderr)
	}

	// An explicit, missing baseline is an error, not a silent no-op.
	if code, _, _ := runLint(t, dir, "-baseline", "no-such-file.json", "./..."); code != 2 {
		t.Errorf("missing explicit baseline: exit %d, want 2", code)
	}
}

// TestSarifOutput: -sarif writes a structurally valid report even when
// the run has findings (exit 1), which is what lets CI upload it from a
// failing job.
func TestSarifOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "lint.sarif")
	code, _, stderr := runLint(t, fixtureDir(t), "-sarif", out, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("SARIF file not written: %v", err)
	}
	for _, want := range []string{`"version": "2.1.0"`, `"ruleId": "exhaustive"`, "%SRCROOT%", "dvfLintFingerprint/v1"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("SARIF output misses %q", want)
		}
	}
}

// TestSarifStdout: '-' streams the report to stdout instead of a file.
func TestSarifStdout(t *testing.T) {
	code, stdout, _ := runLint(t, fixtureDir(t), "-sarif", "-", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, `"$schema"`) || !strings.Contains(stdout, "2.1.0") {
		t.Errorf("stdout misses the SARIF document:\n%s", stdout)
	}
}

// TestOnlyEmptySelection: a -only list that names nothing (just commas
// or blanks) must exit 2, not silently run zero checkers and pass.
func TestOnlyEmptySelection(t *testing.T) {
	for _, sel := range []string{",", " , ", ",,"} {
		code, _, stderr := runLint(t, fixtureDir(t), "-only", sel, "./...")
		if code != 2 || !strings.Contains(stderr, "selects no checkers") {
			t.Errorf("-only %q: exit %d, stderr %q; want exit 2 naming the empty selection", sel, code, stderr)
		}
	}
}

// TestBaselineUnknownChecker: a baseline entry naming a checker the
// registry does not know is a configuration error (it would suppress
// nothing forever), reported with exit 2.
func TestBaselineUnknownChecker(t *testing.T) {
	dir := copyFixture(t, fixtureDir(t))
	bl := `{"version":1,"findings":[{"checker":"exhuastive","file":"internal/enums/enums.go","message":"x","count":1}]}`
	if err := os.WriteFile(filepath.Join(dir, ".dvf-lint-baseline.json"), []byte(bl), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runLint(t, dir, "./...")
	if code != 2 || !strings.Contains(stderr, `unknown checker "exhuastive"`) {
		t.Errorf("exit %d, stderr %q; want exit 2 naming the bogus checker", code, stderr)
	}
}

// TestBaselineShrinkOnly: re-recording an equal baseline is fine;
// recording one that grows a hand-shrunk baseline is refused with exit 1
// and the file is left untouched.
func TestBaselineShrinkOnly(t *testing.T) {
	dir := copyFixture(t, fixtureDir(t))
	blPath := filepath.Join(dir, ".dvf-lint-baseline.json")

	if code, _, stderr := runLint(t, dir, "-write-baseline", "./..."); code != 0 {
		t.Fatalf("initial -write-baseline: exit %d, stderr %s", code, stderr)
	}
	if code, _, stderr := runLint(t, dir, "-write-baseline", "./..."); code != 0 {
		t.Fatalf("idempotent -write-baseline: exit %d, stderr %s", code, stderr)
	}

	// Shrink the baseline by hand (as fixing a finding would), then try
	// to re-record the full set: that is growth and must be refused.
	data, err := os.ReadFile(blPath)
	if err != nil {
		t.Fatal(err)
	}
	var bl struct {
		Version  int               `json:"version"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(data, &bl); err != nil {
		t.Fatal(err)
	}
	if len(bl.Findings) < 1 {
		t.Fatal("fixture baseline is empty; cannot exercise the ratchet")
	}
	bl.Findings = bl.Findings[:len(bl.Findings)-1]
	shrunk, err := json.Marshal(bl)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blPath, shrunk, 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, stderr := runLint(t, dir, "-write-baseline", "./...")
	if code != 1 || !strings.Contains(stderr, "refusing to grow") {
		t.Fatalf("growing -write-baseline: exit %d, stderr %q; want exit 1 refusing growth", code, stderr)
	}
	after, err := os.ReadFile(blPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, shrunk) {
		t.Error("refused -write-baseline still rewrote the baseline file")
	}
}
