// Command dvf-bench benchmarks the trace→cache→DVF pipeline and writes a
// schema-versioned run manifest, the machine-readable perf trajectory CI
// gates on. Each selected kernel's trace is recorded once (struct-of-
// arrays), then replayed in RefBatch blocks through the sequential, the
// set-sharded and the auto-selected engine on every selected cache; per
// cell the manifest records refs, wall time, ns/ref and the simulation
// counters (the engines must agree bit for bit — every bench run doubles
// as a differential test). The "auto" cells measure what
// cache.NewAutoEngine actually picks for the trace, so a baseline compare
// proves the adaptive choice is at parity-or-better at every trace size.
//
// Benchmark and record:
//
//	dvf-bench                          # full verification suite, BENCH_<ts>.json in .
//	dvf-bench -kernels VM,CG -benchtime 3x -out results/
//
// With -serve the run appends a fifth cell, "serve/loadtest/serve": an
// in-process dvf-serve instance driven over real HTTP by the
// internal/serve/loadtest client fleet, recording sustained
// evaluations-per-wall-time (NsPerRef) and folding the request-latency
// histogram digest into the manifest metrics.
//
// Gate against a baseline:
//
//	dvf-bench -compare testdata/bench_baseline.json               # exit 1 on >20% ns/ref regression
//	dvf-bench -compare old.json -regress-pct 10 -warn-only        # report, never fail
//
// Like every binary in this repository it also takes -metrics and -pprof
// (see internal/obs); the benchmark additionally folds its pipeline
// metrics snapshot into the manifest itself.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/resilience-models/dvf/internal/bench"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/obs"
)

var tableIV = map[string]cache.Config{
	"small": cache.Small,
	"large": cache.Large,
	"16kb":  cache.Profile16KB,
	"128kb": cache.Profile128KB,
	"1mb":   cache.Profile1MB,
	"8mb":   cache.Profile8MB,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvf-bench: ")
	kernelsFlag := flag.String("kernels", "", "comma-separated Table II codes (default: full verification suite)")
	cachesFlag := flag.String("caches", "", "comma-separated Table IV caches (default: small,large)")
	workers := flag.Int("workers", 0, "sharded-engine workers (0 = one per CPU)")
	benchtime := flag.String("benchtime", "1x", "replay iterations per cell, Go-style 'Nx' (best-of)")
	outDir := flag.String("out", ".", "directory for the BENCH_<timestamp>.json manifest ('' = don't write)")
	serveBench := flag.Bool("serve", false, "also benchmark the dvf-serve HTTP hot path (the serve/loadtest/serve cell)")
	serveRequests := flag.Int("serve-requests", 0, "sweep requests for the serve cell (0 = loadtest default)")
	serveClients := flag.Int("serve-clients", 0, "concurrent clients for the serve cell (0 = loadtest default)")
	compare := flag.String("compare", "", "baseline manifest to gate against")
	regressPct := flag.Float64("regress-pct", bench.DefaultRegressPct, "ns/ref regression threshold in percent")
	warnOnly := flag.Bool("warn-only", false, "report regressions but exit 0 (CI cross-machine mode)")
	quiet := flag.Bool("q", false, "suppress per-cell progress output")
	o := obs.AddFlags(nil)
	flag.Parse()
	stop := o.Start()

	iters, err := parseBenchtime(*benchtime)
	if err != nil {
		stop()
		log.Fatal(err)
	}
	configs, err := parseCaches(*cachesFlag)
	if err != nil {
		stop()
		log.Fatal(err)
	}
	opts := bench.Options{
		Kernels: splitList(*kernelsFlag),
		Configs: configs,
		Workers: *workers,
		Iters:   iters,
		Sink:    o.Sink(),
	}
	if opts.Sink == nil {
		// The manifest always carries pipeline metrics, -metrics or not.
		opts.Sink = metrics.New()
	}
	if !*quiet {
		opts.Logf = log.Printf
	}

	m, err := bench.Run(opts)
	if err != nil {
		stop()
		log.Fatal(err)
	}
	if *serveBench {
		cell, err := bench.RunServe(bench.ServeOptions{
			Requests: *serveRequests,
			Clients:  *serveClients,
			Workers:  *workers,
			Sink:     opts.Sink,
			Logf:     opts.Logf,
		})
		if err != nil {
			stop()
			log.Fatal(err)
		}
		m.Cells = append(m.Cells, cell)
		sort.Slice(m.Cells, func(i, j int) bool { return m.Cells[i].Key() < m.Cells[j].Key() })
		// Refold the metrics so the loadtest latency digest
		// (loadtest.request_ns) rides in the manifest.
		m.Metrics = opts.Sink.Snapshot()
	}
	if err := bench.RenderSummary(os.Stdout, m); err != nil {
		stop()
		log.Fatal(err)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			stop()
			log.Fatal(err)
		}
		path := filepath.Join(*outDir, m.Filename())
		f, err := os.Create(path)
		if err != nil {
			stop()
			log.Fatal(err)
		}
		if err := m.WriteJSON(f); err != nil {
			_ = f.Close()
			stop()
			log.Fatal(err)
		}
		// The manifest is the product of the run: a failed close means a
		// possibly truncated file, which must fail loudly, not gate CI on
		// garbage.
		if err := f.Close(); err != nil {
			stop()
			log.Fatal(err)
		}
		fmt.Printf("manifest: %s\n", path)
	}

	exit := 0
	if *compare != "" {
		base, err := bench.ReadManifestFile(*compare)
		if err != nil {
			stop()
			log.Fatal(err)
		}
		res := bench.Compare(base, m, bench.CompareOptions{MaxRegressPct: *regressPct})
		if err := res.Render(os.Stdout); err != nil {
			stop()
			log.Fatal(err)
		}
		if res.Failed() {
			if *warnOnly {
				fmt.Println("warn-only: regressions reported, exit 0")
			} else {
				exit = 1
			}
		}
	}
	stop()
	os.Exit(exit)
}

// parseBenchtime accepts Go benchmark syntax "3x" (or a bare integer) for
// the per-cell iteration count.
func parseBenchtime(s string) (int, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "x")
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("invalid -benchtime %q: want e.g. 1x or 5x", s)
	}
	return n, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseCaches(s string) ([]cache.Config, error) {
	var out []cache.Config
	for _, name := range splitList(s) {
		cfg, ok := tableIV[strings.ToLower(name)]
		if !ok {
			return nil, fmt.Errorf("unknown cache %q (want small, large, 16kb, 128kb, 1mb, 8mb)", name)
		}
		out = append(out, cfg)
	}
	return out, nil
}
