// Command dvf-repro runs the complete reproduction in one shot and prints
// a pass/fail report for every quantitative claim of the paper that this
// repository reproduces:
//
//	Figure 4  — model-vs-simulator error within 15% for every structure
//	Figure 5  — the qualitative DVF-profiling claims (per-structure and
//	            cross-kernel orderings, the FT capacity jump)
//	Figure 6  — the CG/PCG crossover
//	Figure 7  — the 5%-degradation ECC minimum
//	Stores    — writeback models within 15% (this repo's extension)
//	Baseline  — fault injection agrees on MC and costs orders more
//
// Exit status is non-zero when any check fails, so the command slots into
// CI as the reproduction gate.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/experiments"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/obs"
	"github.com/resilience-models/dvf/internal/tracez"
)

type check struct {
	name string
	fn   func(ms metrics.Sink, tz tracez.Recorder) (string, error)
}

func main() {
	o := obs.AddFlags(nil)
	flag.Parse()
	stop := o.Start()
	checks := []check{
		{"Figure 4: model error <= 15% on every structure", checkFig4},
		{"Figure 5: profiling orderings and the FT jump", checkFig5},
		{"Figure 6: CG/PCG crossover", checkFig6},
		{"Figure 7: ECC minimum at 5% degradation", checkFig7},
		{"Stores: writeback models <= 15%", checkStores},
		{"Baseline: injection agreement and cost", checkBaseline},
	}
	failed := 0
	for _, c := range checks {
		start := time.Now()
		detail, err := c.fn(o.Sink(), o.Tracer())
		status := "PASS"
		if err != nil {
			status = "FAIL"
			detail = err.Error()
			failed++
		}
		fmt.Printf("[%s] %-50s %6.2fs  %s\n", status, c.name, time.Since(start).Seconds(), detail)
	}
	stop()
	if failed > 0 {
		fmt.Printf("\n%d of %d reproduction checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("\nall %d reproduction checks passed\n", len(checks))
}

func checkFig4(ms metrics.Sink, tz tracez.Recorder) (string, error) {
	res, err := experiments.RunFig4Obs(0, ms, tz)
	if err != nil {
		return "", err
	}
	for _, r := range res.Rows {
		if e := math.Abs(r.ErrorPct()); e > 15 {
			return "", fmt.Errorf("%s/%s on %s: %.1f%% error", r.Kernel, r.Structure, r.Cache, e)
		}
	}
	return fmt.Sprintf("max |error| %.1f%% over %d structure/cache cells",
		res.MaxAbsErrorPct(), len(res.Rows)), nil
}

func checkFig5(ms metrics.Sink, tz tracez.Recorder) (string, error) {
	res, err := experiments.RunFig5Obs(0, ms, tz)
	if err != nil {
		return "", err
	}
	get := func(kernel, cacheName, structure string) (float64, error) {
		return res.Lookup(kernel, cacheName, structure)
	}
	for _, cfg := range cache.ProfilingConfigs() {
		a, err := get("VM", cfg.Name, "A")
		if err != nil {
			return "", err
		}
		b, _ := get("VM", cfg.Name, "B")
		c, _ := get("VM", cfg.Name, "C")
		if !(a > b && b > c) {
			return "", fmt.Errorf("VM ordering broken on %s", cfg.Name)
		}
		cg, _ := get("CG", cfg.Name, "DVF_a")
		ft, _ := get("FT", cfg.Name, "DVF_a")
		if cg < 100*ft {
			return "", fmt.Errorf("CG not >> FT on %s", cfg.Name)
		}
		mc, _ := get("MC", cfg.Name, "DVF_a")
		nb, _ := get("NB", cfg.Name, "DVF_a")
		if mc < 2*nb {
			return "", fmt.Errorf("MC not >> NB on %s", cfg.Name)
		}
	}
	ft16, _ := get("FT", cache.Profile16KB.Name, "DVF_a")
	ft128, _ := get("FT", cache.Profile128KB.Name, "DVF_a")
	if ft16 < 10*ft128 {
		return "", fmt.Errorf("FT capacity jump missing")
	}
	return fmt.Sprintf("FT jump %.0fx below its working set", ft16/ft128), nil
}

func checkFig6(ms metrics.Sink, tz tracez.Recorder) (string, error) {
	res, err := experiments.RunFig6Obs(0, ms, tz)
	if err != nil {
		return "", err
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.PCGDVF <= first.CGDVF {
		return "", fmt.Errorf("PCG not worse at n=%d", first.N)
	}
	if last.PCGDVF >= last.CGDVF {
		return "", fmt.Errorf("PCG not better at n=%d", last.N)
	}
	x := res.CrossoverSize()
	if x == 0 {
		return "", fmt.Errorf("no crossover")
	}
	return fmt.Sprintf("crossover at n=%d", x), nil
}

func checkFig7(ms metrics.Sink, tz tracez.Recorder) (string, error) {
	res, err := experiments.RunFig7Obs(ms, tz)
	if err != nil {
		return "", err
	}
	for _, s := range res.Series {
		best, err := dvf.MinPoint(s.Points)
		if err != nil {
			return "", err
		}
		if best.DegradationPct != 5 {
			return "", fmt.Errorf("%s minimum at %.0f%%", s.Mechanism.Name, best.DegradationPct)
		}
	}
	return "both mechanisms minimize DVF at 5%", nil
}

func checkStores(_ metrics.Sink, _ tracez.Recorder) (string, error) {
	var worst float64
	cells := 0
	for _, k := range experiments.StoreModelers() {
		for _, cfg := range cache.VerificationConfigs() {
			rows, err := experiments.VerifyStores(k, cfg)
			if err != nil {
				return "", err
			}
			for _, r := range rows {
				cells++
				if e := math.Abs(r.ErrorPct()); e > 15 {
					return "", fmt.Errorf("%s/%s on %s: %.1f%% writeback error",
						r.Kernel, r.Structure, r.Cache, e)
				} else if e > worst {
					worst = e
				}
			}
		}
	}
	return fmt.Sprintf("max |error| %.1f%% over %d cells", worst, cells), nil
}

func checkBaseline(_ metrics.Sink, _ tracez.Recorder) (string, error) {
	cmp, err := experiments.RunBaseline(kernels.NewMC(3000), 40, cache.Large)
	if err != nil {
		return "", err
	}
	if cmp.RankRho != 1 {
		return "", fmt.Errorf("MC injection ranking disagrees (rho %.2f)", cmp.RankRho)
	}
	if cmp.CostRatio() < 3 {
		return "", fmt.Errorf("injection only %.0fx the model cost", cmp.CostRatio())
	}
	return fmt.Sprintf("rho 1.00 on MC; injection %.0fx the model cost", cmp.CostRatio()), nil
}
