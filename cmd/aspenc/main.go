// Command aspenc is the extended-Aspen model compiler and evaluator: it
// parses a resilience model (Section III-D of the DVF paper), runs the
// semantic checker, and — unless -check-only is given — evaluates the
// model, printing per-structure main-memory access counts and DVFs.
//
// Usage:
//
//	aspenc [flags] model.aspen
//
//	-check-only      stop after parsing and semantic analysis
//	-fmt             print the model formatted canonically and exit
//	-cache name      override the machine cache with a Table IV config
//	                 (small, large, 16kb, 128kb, 1mb, 8mb)
//	-fit rate        override the memory FIT rate
//	-sweep           evaluate across all four profiling caches
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/resilience-models/dvf/internal/aspen"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/obs"
)

var tableIV = map[string]cache.Config{
	"small": cache.Small,
	"large": cache.Large,
	"16kb":  cache.Profile16KB,
	"128kb": cache.Profile128KB,
	"1mb":   cache.Profile1MB,
	"8mb":   cache.Profile8MB,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("aspenc: ")
	checkOnly := flag.Bool("check-only", false, "stop after parsing and semantic analysis")
	format := flag.Bool("fmt", false, "print the model formatted canonically and exit")
	cacheName := flag.String("cache", "", "override cache: small, large, 16kb, 128kb, 1mb, 8mb")
	fit := flag.Float64("fit", -1, "override the memory FIT rate (failures/1e9h/Mbit)")
	sweep := flag.Bool("sweep", false, "evaluate across the four profiling caches")
	o := obs.AddFlags(nil)
	flag.Parse()
	defer o.Start()()

	if flag.NArg() != 1 {
		log.Fatalf("usage: aspenc [flags] model.aspen")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	model, err := aspen.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	if *format {
		fmt.Print(aspen.Format(model))
		return
	}
	if err := aspen.Check(model); err != nil {
		log.Fatal(err)
	}
	if *checkOnly {
		fmt.Printf("%s: model %q OK (%d params, %d data structures, %d kernels)\n",
			flag.Arg(0), model.Name, len(model.Params), len(model.Data), len(model.Kernels))
		return
	}

	var base []aspen.Option
	if *cacheName != "" {
		cfg, ok := tableIV[strings.ToLower(*cacheName)]
		if !ok {
			log.Fatalf("unknown cache %q (want small, large, 16kb, 128kb, 1mb or 8mb)", *cacheName)
		}
		base = append(base, aspen.WithCache(cfg))
	}
	if *fit >= 0 {
		base = append(base, aspen.WithFIT(dvf.FIT(*fit)))
	}

	if *sweep {
		for _, cfg := range cache.ProfilingConfigs() {
			opts := append([]aspen.Option{aspen.WithCache(cfg)}, base...)
			ev, err := aspen.Evaluate(model, opts...)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(ev.Render())
			fmt.Println()
		}
		return
	}
	ev, err := aspen.Evaluate(model, base...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ev.Render())
}
