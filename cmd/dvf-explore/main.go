// Command dvf-explore sweeps one kernel across a design space of cache
// geometries and memory-protection mechanisms, ranking the configurations
// by application DVF — the paper's "rapid exploration" workflow with
// resilience as the objective.
//
//	dvf-explore -kernel MG
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/core"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvf-explore: ")
	kernel := flag.String("kernel", "VM", "kernel to explore (Table II code)")
	o := obs.AddFlags(nil)
	flag.Parse()
	defer o.Start()()

	k, err := kernels.ByName(*kernel)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Explore(k,
		cache.ProfilingConfigs(),
		[]dvf.ECC{dvf.NoECC, dvf.SECDED, dvf.Chipkill})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	best, err := res.Best()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest: %s + %s (DVF_a %.4g)\n", best.Cache.Name, best.Protection.Name, best.DVFa)
}
