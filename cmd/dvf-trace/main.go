// Command dvf-trace captures a kernel's memory-reference trace to disk and
// replays stored traces against arbitrary cache configurations — the
// capture-once / simulate-many workflow the paper uses with its Pin
// traces ("the cache simulation is very time consuming with the memory
// traces of the large input problem sizes").
//
// Capture:
//
//	dvf-trace -record -kernel FT -out ft.trace            (v2 columnar)
//	dvf-trace -record -kernel FT -format v1 -out ft.trace (v1 records)
//
// Replay:
//
//	dvf-trace -replay ft.trace -cache small
//	dvf-trace -replay ft.trace -all
//
// Replay reads either container version (sniffed from the magic), memory-
// maps the file, and feeds the engine RefBatch blocks — zero-copy for v2
// traces on little-endian machines. The engine is chosen adaptively from
// the trace's record count (-workers=-1, the default): sequential below
// the sharding crossover, set-sharded above it. -workers=1 forces the
// sequential simulator, 0 one shard worker per CPU. Every choice produces
// a bit-identical report — the cache decomposes exactly by set index — so
// the flag only trades wall-clock time.
//
// Trace-free analysis:
//
//	dvf-trace -engine analytic -kernel CG -cache large
//	dvf-trace -engine analytic -kernel FT -all
//
// The analytic engine skips the trace entirely: it solves the kernel's
// affine access pattern symbolically and prints the same per-structure
// main-memory access table a replay would, in microseconds. It applies to
// the affine Table II kernels (VM, CG, MG, FT); the data-dependent ones
// (NB, MC) need a real trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/resilience-models/dvf/internal/analytic"
	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/obs"
	"github.com/resilience-models/dvf/internal/trace"
	"github.com/resilience-models/dvf/internal/tracez"
)

var tableIV = map[string]cache.Config{
	"small": cache.Small,
	"large": cache.Large,
	"16kb":  cache.Profile16KB,
	"128kb": cache.Profile128KB,
	"1mb":   cache.Profile1MB,
	"8mb":   cache.Profile8MB,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvf-trace: ")
	record := flag.Bool("record", false, "record a kernel trace")
	kernel := flag.String("kernel", "VM", "kernel to record (Table II code)")
	out := flag.String("out", "", "output trace file (record mode)")
	format := flag.String("format", "v2", "trace container to record: v2 (columnar, zero-copy replay) or v1")
	replay := flag.String("replay", "", "trace file to replay")
	cacheName := flag.String("cache", "small", "cache to replay against")
	all := flag.Bool("all", false, "replay against every Table IV cache")
	workers := flag.Int("workers", -1, "replay workers (-1 = auto from trace size, 0 = one per CPU, 1 = sequential)")
	engine := flag.String("engine", "replay", "analysis engine: replay (trace-driven) or analytic (trace-free, affine kernels)")
	o := obs.AddFlags(nil)
	flag.Parse()
	defer o.Start()()

	switch {
	case *engine == "analytic":
		configs := []cache.Config{}
		if *all {
			configs = append(cache.VerificationConfigs(), cache.ProfilingConfigs()...)
		} else {
			cfg, ok := tableIV[strings.ToLower(*cacheName)]
			if !ok {
				log.Fatalf("unknown cache %q", *cacheName)
			}
			configs = append(configs, cfg)
		}
		for _, cfg := range configs {
			if err := doAnalytic(*kernel, cfg); err != nil {
				log.Fatal(err)
			}
		}
	case *engine != "replay":
		log.Fatalf("unknown -engine %q (want replay or analytic)", *engine)
	case *record:
		if *out == "" {
			log.Fatal("-record requires -out")
		}
		if err := doRecord(*kernel, *out, *format, o.Sink(), o.Tracer()); err != nil {
			log.Fatal(err)
		}
	case *replay != "":
		configs := []cache.Config{}
		if *all {
			configs = append(cache.VerificationConfigs(), cache.ProfilingConfigs()...)
		} else {
			cfg, ok := tableIV[strings.ToLower(*cacheName)]
			if !ok {
				log.Fatalf("unknown cache %q", *cacheName)
			}
			configs = append(configs, cfg)
		}
		for _, cfg := range configs {
			if err := doReplay(*replay, cfg, *workers, o.Sink(), o.Tracer()); err != nil {
				log.Fatal(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// doAnalytic solves a kernel's affine access pattern for one cache and
// prints the predicted per-structure main-memory access counts — the
// trace-free counterpart of recording and replaying it.
func doAnalytic(code string, cfg cache.Config) error {
	k, err := kernels.ByName(code)
	if err != nil {
		return err
	}
	d, ok := kernels.Affine(k)
	if !ok {
		return fmt.Errorf("%s has no affine access pattern; record a trace and use -replay", k.Name())
	}
	prof, err := analytic.Solve(d, cfg)
	if err != nil {
		return err
	}
	tol := analytic.Tolerance(k.Name(), cfg)
	fmt.Printf("%s on %s (engine=analytic, tolerance %g)\n", prof.Kernel, prof.Cache, tol)
	fmt.Printf("%-8s %12s %16s\n", "struct", "lines", "mem accesses")
	for _, s := range prof.Structures {
		fmt.Printf("%-8s %12d %16.1f\n", s.Name, s.Lines, s.Misses)
	}
	fmt.Printf("%-8s %12s %16.1f\n", "total", "", prof.TotalMisses())
	return nil
}

func doRecord(code, out, format string, sink metrics.Sink, tz tracez.Recorder) error {
	if format != "v1" && format != "v2" {
		return fmt.Errorf("unknown trace format %q (want v1 or v2)", format)
	}
	k, err := kernels.ByName(code)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	// The container header carries the region table, which is only fully
	// known after the run (kernels may allocate auxiliary regions such as
	// CG's q); capture the stream in memory first, then reconstruct the
	// table from the observed ranges and write the file.
	rec := &trace.Recorder{}
	sw := sink.Timer("trace.record_ns").Start()
	info, err := kernels.RunTraced(k, trace.Instrumented(rec, sink, "trace.record"), tz)
	sw.Stop()
	if err != nil {
		return err
	}
	sp := tz.Track("trace.encode").Begin("encode " + out)
	reg := kernelRegistry(info, rec)
	if format == "v2" {
		w := trace.NewWriterV2(f, reg)
		for i, r := range rec.Refs {
			w.Access(r, rec.Owners[i])
		}
		err = w.Flush()
	} else {
		var w *trace.Writer
		if w, err = trace.NewWriter(f, reg); err == nil {
			for i, r := range rec.Refs {
				w.Access(r, rec.Owners[i])
			}
			err = w.Flush()
		}
	}
	sp.EndInt("refs", int64(len(rec.Refs)))
	if err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d references, %d structures -> %s (%s)\n",
		info.Kernel, len(rec.Refs), len(info.Structures), out, format)
	return nil
}

// kernelRegistry reconstructs a registry matching the recorded stream: it
// derives each region's span from the recorded references per owner.
func kernelRegistry(info *kernels.RunInfo, rec *trace.Recorder) *trace.Registry {
	// Region IDs in the stream are 1-based allocation order; rebuild with
	// the same bases by scanning the observed address ranges.
	type span struct{ lo, hi uint64 }
	spans := map[int32]*span{}
	for i, r := range rec.Refs {
		o := rec.Owners[i]
		s, ok := spans[o]
		if !ok {
			spans[o] = &span{lo: r.Addr, hi: r.Addr + uint64(r.Size)}
			continue
		}
		if r.Addr < s.lo {
			s.lo = r.Addr
		}
		if end := r.Addr + uint64(r.Size); end > s.hi {
			s.hi = end
		}
	}
	names := map[int32]string{}
	for _, st := range info.Structures {
		names[st.ID] = st.Name
	}
	reg := trace.NewRegistry()
	maxID := int32(0)
	for id := range spans {
		if id > maxID {
			maxID = id
		}
	}
	for id := int32(1); id <= maxID; id++ {
		name := names[id]
		if name == "" {
			name = fmt.Sprintf("aux%d", id)
		}
		s := spans[id]
		if s == nil {
			reg.Alloc(name, 0)
			continue
		}
		reg.Alloc(name, s.hi-s.lo)
	}
	return reg
}

func doReplay(path string, cfg cache.Config, workers int, sink metrics.Sink, tz tracez.Recorder) error {
	tf, err := trace.OpenTraceFile(path)
	if err != nil {
		return err
	}
	defer tf.Close()
	var sim cache.Engine
	if workers < 0 {
		sim, err = cache.NewAutoEngine(cfg, cache.AutoHint{Refs: tf.NumRefs()})
	} else {
		sim, err = cache.NewEngine(cfg, workers)
	}
	if err != nil {
		return err
	}
	defer sim.Close()
	sim.Instrument(sink)
	sim.Trace(tz)
	consume := trace.InstrumentedBatch(trace.BatchConsumerFunc(sim.AccessBatch), sink, "trace.replay")
	sw := sink.Timer("trace.replay_ns").Start()
	sp := tz.Track("trace.replay").Begin("replay " + cfg.Name)
	err = tf.Replay(trace.DefaultBatch, consume.AccessBatch)
	sim.Drain()
	sp.End()
	sw.Stop()
	if err != nil {
		return err
	}
	for _, r := range tf.Regions {
		sim.Label(cache.StructID(r.ID), r.Name)
	}
	sim.PublishStats(sink, "cache.replay")
	fmt.Print(sim.Report())
	return nil
}
