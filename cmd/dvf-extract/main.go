// Command dvf-extract statically extracts the analytic access-pattern
// descriptor of a traced kernel from its Go source (internal/extract)
// and prints it, or diffs it against the kernel's hand-written
// AccessPattern.
//
// Usage:
//
//	dvf-extract -kernel vm                   # JSON descriptor to stdout
//	dvf-extract -kernel all -format go       # generated Go source
//	dvf-extract -kernel all -diff            # compare vs hand-written
//	dvf-extract -kernel cg -suite profiling  # profiling-suite geometry
//
// Exit status: 0 when every requested extraction succeeds (and, with
// -diff, matches), 1 when a kernel is inextractable or drifts from its
// hand-written descriptor, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/resilience-models/dvf/internal/analysis"
	"github.com/resilience-models/dvf/internal/extract"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/obs"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvf-extract: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], cwd, os.Stdout, os.Stderr))
}

// run is the whole CLI, parameterized over its inputs and output streams
// so main_test.go can drive it against the live repository without
// spawning processes.
func run(args []string, cwd string, stdout, stderr io.Writer) int {
	errorf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "dvf-extract: "+format+"\n", a...)
	}

	fs := flag.NewFlagSet("dvf-extract", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kernel := fs.String("kernel", "all", "kernel to extract: vm, cg, mg, ft or all")
	suite := fs.String("suite", "verification", "kernel geometry: verification or profiling")
	format := fs.String("format", "json", "output format: json or go")
	diff := fs.Bool("diff", false, "compare the extraction against the hand-written AccessPattern instead of printing it")
	o := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	defer o.Start()()
	if fs.NArg() > 0 {
		errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
		return 2
	}
	if *format != "json" && *format != "go" {
		errorf("unknown format %q (want json or go)", *format)
		return 2
	}

	var suiteKernels []kernels.Kernel
	switch *suite {
	case "verification":
		suiteKernels = kernels.VerificationSuite()
	case "profiling":
		suiteKernels = kernels.ProfilingSuite()
	default:
		errorf("unknown suite %q (want verification or profiling)", *suite)
		return 2
	}

	var selected []kernels.Kernel
	for _, k := range suiteKernels {
		if _, ok := kernels.Provenance(k); !ok {
			continue
		}
		if *kernel == "all" || strings.EqualFold(*kernel, k.Name()) {
			selected = append(selected, k)
		}
	}
	if len(selected) == 0 {
		errorf("no extractable kernel matches %q (want vm, cg, mg, ft or all)", *kernel)
		return 2
	}

	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		errorf("%v", err)
		return 2
	}

	status := 0
	for _, k := range selected {
		prov, _ := kernels.Provenance(k)
		if _, err := loader.Load(prov.ImportPath); err != nil {
			errorf("loading %s: %v", prov.ImportPath, err)
			return 2
		}
		d, err := extract.Extract(loader.Program(), extract.Target{
			Kernel:   k.Name(),
			Path:     prov.ImportPath,
			TypeName: prov.TypeName,
			Method:   prov.Method,
			Ints:     prov.Ints,
			Floats:   prov.Floats,
			Bools:    prov.Bools,
		})
		if err != nil {
			errorf("%s: %v", k.Name(), err)
			if extract.Inextractable(err) {
				status = 1
				continue
			}
			return 2
		}
		if *diff {
			want, err := k.(kernels.PatternSource).AccessPattern()
			if err != nil {
				errorf("%s: hand-written AccessPattern: %v", k.Name(), err)
				return 2
			}
			if dd := extract.Diff(d, want); dd != "" {
				fmt.Fprintf(stdout, "%s: DRIFT: %s\n", k.Name(), dd)
				status = 1
			} else {
				fmt.Fprintf(stdout, "%s: extraction matches hand-written descriptor\n", k.Name())
			}
			continue
		}
		var out []byte
		switch *format {
		case "json":
			out, err = extract.MarshalDescriptor(d)
			out = append(out, '\n')
		case "go":
			out, err = extract.RenderGo(d, "kernels", "extracted"+k.Name())
		}
		if err != nil {
			errorf("%s: rendering: %v", k.Name(), err)
			return 2
		}
		if _, err := stdout.Write(out); err != nil {
			errorf("writing output: %v", err)
			return 2
		}
	}
	return status
}
