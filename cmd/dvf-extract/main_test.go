package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/resilience-models/dvf/internal/extract"
)

// The tests drive run() in-process against the live repository: the
// loader walks up from the package directory to the module root, so "."
// is a valid working directory.

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, ".", &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestDiffAllKernelsClean(t *testing.T) {
	code, out, errOut := runCLI(t, "-kernel", "all", "-diff")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"VM:", "CG:", "MG:", "FT:"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DRIFT") {
		t.Errorf("unexpected drift:\n%s", out)
	}
}

func TestJSONRoundTrips(t *testing.T) {
	code, out, errOut := runCLI(t, "-kernel", "vm", "-format", "json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	d, err := extract.UnmarshalDescriptor([]byte(out))
	if err != nil {
		t.Fatalf("output does not round-trip: %v\n%s", err, out)
	}
	if d.Kernel != "VM" || len(d.Regions) != 3 {
		t.Fatalf("unexpected descriptor: kernel %q, %d regions", d.Kernel, len(d.Regions))
	}
}

func TestGoFormat(t *testing.T) {
	code, out, errOut := runCLI(t, "-kernel", "ft", "-format", "go", "-suite", "profiling")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"func extractedFT()", "analytic.BitReverse", "analytic.Butterflies", "DO NOT EDIT"} {
		if !strings.Contains(out, want) {
			t.Errorf("go output missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-kernel", "nb"},          // no pattern source
		{"-format", "yaml"},        // unknown format
		{"-suite", "tiny"},         // unknown suite
		{"-kernel", "vm", "extra"}, // stray positional arg
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: want exit 2, got %d", args, code)
		}
	}
}
