// Command dvf-profile regenerates Figure 5 of the DVF paper: the DVF of
// every major data structure of the six kernels at the Table VI input
// sizes, across the four profiling cache configurations of Table IV.
//
//	-csv    emit machine-readable CSV instead of the table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/resilience-models/dvf/internal/experiments"
	"github.com/resilience-models/dvf/internal/obs"
)

func main() {
	csvOut := flag.Bool("csv", false, "emit CSV instead of the table")
	workers := flag.Int("workers", 0, "profiling workers (0 = parallel default, 1 = sequential)")
	o := obs.AddFlags(nil)
	flag.Parse()
	defer o.Start()()
	res, err := experiments.RunFig5Obs(*workers, o.Sink(), o.Tracer())
	if err != nil {
		log.Fatal(err)
	}
	if *csvOut {
		if err := res.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(res.Render())
}
