// Command dvf-model generates an extended-Aspen resilience model from one
// of the built-in kernels: the kernel runs once (untraced) to profile its
// model inputs (iteration counts, tree shape, visit counts), then renders
// itself as DSL source — the starting point a modeler would refine.
//
//	dvf-model -kernel NB > nb.aspen
//	go run ./cmd/aspenc -sweep nb.aspen
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvf-model: ")
	kernel := flag.String("kernel", "VM", "kernel to model: VM, CG, NB, FT or MC")
	o := obs.AddFlags(nil)
	flag.Parse()
	defer o.Start()()

	k, err := kernels.ByName(*kernel)
	if err != nil {
		log.Fatal(err)
	}
	src, ok := k.(kernels.AspenSourcer)
	if !ok {
		log.Fatalf("%s cannot express itself as Aspen source", k.Name())
	}
	info, err := kernels.RunTraced(k, nil, o.Tracer())
	if err != nil {
		log.Fatal(err)
	}
	text, err := src.AspenSource(info)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(text)
}
