// Command dvf-inject runs the statistical fault-injection baseline the DVF
// paper positions itself against (Section VI), and compares its
// per-structure vulnerability ranking and cost against the model-based DVF
// analysis.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/experiments"
	"github.com/resilience-models/dvf/internal/inject"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvf-inject: ")
	kernel := flag.String("kernel", "VM", "injectable kernel: VM, CG, MG, FT or MC")
	trials := flag.Int("trials", 100, "injection trials per data structure")
	bits := flag.String("bits", "", "run a bit-position sensitivity study on this structure")
	elemSize := flag.Int64("elem", 8, "element size in bytes for the bit study")
	o := obs.AddFlags(nil)
	flag.Parse()
	defer o.Start()()

	k, err := kernels.ByName(*kernel)
	if err != nil {
		log.Fatal(err)
	}
	if *bits != "" {
		injectable, err := inject.AsInjectable(k)
		if err != nil {
			log.Fatal(err)
		}
		profile, err := inject.BitSensitivity(injectable, *bits, *elemSize, *trials, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(profile.Render())
		return
	}
	cmp, err := experiments.RunBaseline(k, *trials, cache.Large)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cmp.Render())
}
