// Command dvf-serve runs the DVF what-if service: the internal/core
// analyze / verify / select-protection API over HTTP/JSON, built for
// campaign-sized design-space sweeps (see internal/serve).
//
// Serve:
//
//	dvf-serve -addr :8080                      # serve until SIGTERM/SIGINT
//	dvf-serve -addr :8080 -access-log access.jsonl -pprof-http localhost:6060
//
// Endpoints: POST /v1/analyze, /v1/verify, /v1/select-protection,
// /v1/aspen, /v1/sweep (NDJSON stream), /v1/batch; GET /metrics
// (?format=text|json|prom), /statusz, /healthz. SIGTERM drains
// gracefully: in-flight requests finish (bounded by serve.DrainTimeout)
// before the process exits.
//
// Drive an already-running server with the load harness:
//
//	dvf-serve -loadtest http://127.0.0.1:8080 -requests 64 -clients 8
//
// Self-contained smoke (the `make serve-smoke` gate): start an
// ephemeral server in-process, run the load harness against it over
// real HTTP, require every request 200, a non-empty /metrics, the
// throughput bar, and a clean drain:
//
//	dvf-serve -smoke -min-epm 100000 -out serve-latency.json
//
// Like every binary in this repository it takes the standard -metrics,
// -pprof, -pprof-http and -trace-out observability flags (internal/obs).
// The service's own metrics registry is always live (it backs /metrics);
// -metrics additionally dumps a final snapshot on exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/resilience-models/dvf/internal/metrics"
	"github.com/resilience-models/dvf/internal/obs"
	"github.com/resilience-models/dvf/internal/serve"
	"github.com/resilience-models/dvf/internal/serve/loadtest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvf-serve: ")
	addr := flag.String("addr", ":8080", "listen address (host:port; :0 picks an ephemeral port)")
	accessLog := flag.String("access-log", "", "JSONL access-log destination: '-' for stderr, or a file path (appended)")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = GOMAXPROCS)")
	memoCap := flag.Int("memo-cap", 0, "memoized-evaluation cache entries (0 = default)")
	smoke := flag.Bool("smoke", false, "self-contained smoke: serve ephemeral, loadtest, verify /metrics, drain")
	loadURL := flag.String("loadtest", "", "drive the load harness against an already-running server at this base URL")
	requests := flag.Int("requests", 64, "loadtest/smoke: total sweep requests")
	clients := flag.Int("clients", 4, "loadtest/smoke: concurrent clients")
	minEPM := flag.Float64("min-epm", 0, "loadtest/smoke: fail unless sustained evaluations/min reach this bar (0 = don't gate)")
	outPath := flag.String("out", "", "loadtest/smoke: write the result (throughput + latency histogram digest) as JSON to this file")
	o := obs.AddFlags(nil)
	flag.Parse()
	stop := o.Start()

	exit := 0
	switch {
	case *smoke && *loadURL != "":
		log.Print("-smoke and -loadtest are mutually exclusive")
		exit = 2
	case *smoke:
		exit = runSmoke(o, *workers, *memoCap, *requests, *clients, *minEPM, *outPath)
	case *loadURL != "":
		exit = runLoadtest(o.Sink(), *loadURL, *requests, *clients, *minEPM, *outPath)
	default:
		exit = runServer(o, *addr, *accessLog, *workers, *memoCap)
	}
	stop()
	os.Exit(exit)
}

// serverConfig assembles the serve.Config shared by the real server and
// the smoke server. The service registry is always live — /metrics is a
// first-class endpoint — and doubles as the obs exit-dump sink when
// -metrics was given.
func serverConfig(o *obs.Options, workers, memoCap int, accessLog io.Writer) serve.Config {
	sink := o.Sink()
	if sink == nil {
		sink = metrics.New()
	}
	return serve.Config{
		Sink:      sink,
		Tracer:    o.Tracer(),
		AccessLog: accessLog,
		PprofAddr: o.PprofAddr(),
		Workers:   workers,
		MemoCap:   memoCap,
	}
}

// openAccessLog resolves the -access-log flag; the caller closes.
func openAccessLog(spec string) (io.Writer, io.Closer, error) {
	switch spec {
	case "":
		return nil, nil, nil
	case "-":
		return os.Stderr, nil, nil
	default:
		f, err := os.OpenFile(spec, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		return f, f, nil
	}
}

// runServer serves until SIGTERM/SIGINT, then drains gracefully.
func runServer(o *obs.Options, addr, accessLog string, workers, memoCap int) int {
	alog, closer, err := openAccessLog(accessLog)
	if err != nil {
		log.Print(err)
		return 1
	}
	srv := serve.New(serverConfig(o, workers, memoCap, alog))
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	err = srv.ListenAndServe(ctx, addr, func(a net.Addr) {
		log.Printf("listening on %s", a)
		if pa := o.PprofAddr(); pa != "" {
			log.Printf("pprof on http://%s/debug/pprof/", pa)
		}
	})
	if closer != nil {
		if cerr := closer.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		log.Print(err)
		return 1
	}
	log.Print("drained cleanly")
	return 0
}

// runLoadtest drives the harness at an external server and reports.
func runLoadtest(sink metrics.Sink, baseURL string, requests, clients int, minEPM float64, outPath string) int {
	res, err := loadtest.Run(loadtest.Options{
		BaseURL: baseURL, Requests: requests, Clients: clients, Sink: sink,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	return reportResult(res, minEPM, outPath)
}

// reportResult renders a Result, optionally writes it to disk, and
// applies the throughput bar.
func reportResult(res *loadtest.Result, minEPM float64, outPath string) int {
	fmt.Printf("loadtest: %d requests, %d evals (%d errors) in %s — %.0f evals/sec (%.0f/min)\n",
		res.Requests, res.Evals, res.Errors, res.Wall.Round(1e6), res.EvalsPerSec, res.EvalsPerMin())
	h := res.Latency
	fmt.Printf("latency: count=%d p50<=%dns p90<=%dns p99<=%dns max=%dns\n",
		h.Count, h.P50, h.P90, h.P99, h.Max)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(res)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("result: %s\n", outPath)
	}
	if res.Errors > 0 {
		log.Printf("%d request rows failed", res.Errors)
		return 1
	}
	if minEPM > 0 && res.EvalsPerMin() < minEPM {
		log.Printf("throughput %.0f evals/min below the %.0f bar", res.EvalsPerMin(), minEPM)
		return 1
	}
	return 0
}

// probeSmoke asserts the observability plane is actually populated
// after load: /metrics text output mentions the serve instruments,
// /statusz identifies the service, /healthz answers.
func probeSmoke(base string) error {
	checks := []struct {
		path, want string
	}{
		{"/metrics", "serve."},
		{"/metrics?format=prom", "dvf_serve_"},
		{"/statusz", "dvf-serve"},
		{"/healthz", "ok"},
	}
	for _, c := range checks {
		body, err := get(base + c.path)
		if err != nil {
			return err
		}
		if !strings.Contains(body, c.want) {
			return fmt.Errorf("smoke: GET %s: response does not mention %q", c.path, c.want)
		}
	}
	return nil
}

// get fetches a URL and returns its body, requiring status 200.
func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("smoke: GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}

// runSmoke is the end-to-end gate: ephemeral server, real HTTP load,
// /metrics and /statusz probes, graceful drain — single process, no
// fixed port, no external tools.
func runSmoke(o *obs.Options, workers, memoCap, requests, clients int, minEPM float64, outPath string) int {
	cfg := serverConfig(o, workers, memoCap, nil)
	srv := serve.New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	addr := <-addrCh
	base := "http://" + addr.String()
	log.Printf("smoke server on %s", base)

	res, err := loadtest.Run(loadtest.Options{
		BaseURL: base, Requests: requests, Clients: clients, Sink: cfg.Sink,
	})
	exit := 0
	if err != nil {
		log.Print(err)
		exit = 1
	} else {
		exit = reportResult(res, minEPM, outPath)
	}
	if err := probeSmoke(base); err != nil {
		log.Print(err)
		exit = 1
	}
	cancel()
	if err := <-serveDone; err != nil {
		log.Printf("drain: %v", err)
		exit = 1
	} else {
		log.Print("drained cleanly")
	}
	return exit
}
