// Command dvf-flame folds a Chrome trace-event JSON file — as written by
// any dvf binary's -trace-out flag — into a terminal report: per-phase
// self/total time across every track, the counter tracks present, and
// the top-N individual spans by duration. It answers "where did the run
// spend its time, and which shard or driver stalled" without opening a
// trace UI.
//
//	dvf-flame run.json             fold and report
//	dvf-flame -top 30 run.json     widen the span listing
//	dvf-flame -check run.json      validate only (exit non-zero on a
//	                               malformed trace); used by CI
//	dvf-flame -                    read the trace from stdin
//
// Like every binary in this repository it also takes the standard
// -metrics, -pprof, -pprof-http and -trace-out flags (internal/obs) —
// yes, dvf-flame can emit a trace of itself folding a trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/resilience-models/dvf/internal/obs"
	"github.com/resilience-models/dvf/internal/tracez"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvf-flame: ")
	topN := flag.Int("top", 15, "number of individual spans to list (0 suppresses the listing)")
	check := flag.Bool("check", false, "validate the trace against the tracez schema and exit")
	o := obs.AddFlags(nil)
	flag.Parse()
	defer o.Start()()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dvf-flame [-top N] [-check] <trace.json | ->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	events, err := tracez.ValidateReader(in)
	if err != nil {
		log.Fatal(err)
	}
	if *check {
		fmt.Printf("%s: valid trace, %d events\n", name, len(events))
		return
	}
	if err := tracez.Fold(events).Render(os.Stdout, *topN); err != nil {
		log.Fatal(err)
	}
}
