// Command dvf-verify regenerates Figure 4 of the DVF paper: it runs the six
// verification kernels through the cache simulator and compares the CGPMAC
// analytical estimates against the simulated main-memory access counts.
//
//	-csv    emit machine-readable CSV instead of the table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/resilience-models/dvf/internal/experiments"
)

func main() {
	csvOut := flag.Bool("csv", false, "emit CSV instead of the table")
	flag.Parse()
	res, err := experiments.RunFig4()
	if err != nil {
		log.Fatal(err)
	}
	if *csvOut {
		if err := res.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(res.Render())
}
