// Command dvf-verify regenerates Figure 4 of the DVF paper: it runs the six
// verification kernels through the cache simulator and compares the CGPMAC
// analytical estimates against the simulated main-memory access counts.
//
//	-engine E   replay (default) reproduces Figure 4 through the trace
//	            replay pipeline; analytic runs the trace-free analytic
//	            engine's live differential instead — every affine kernel
//	            solved symbolically and checked against the sequential
//	            simulator, exiting nonzero on any tolerance breach
//	-csv        emit machine-readable CSV instead of the table
//	-workers N  simulation parallelism: 0 (default) fans the twelve
//	            (kernel, cache) cells out concurrently, 1 falls back to
//	            the strictly sequential path, N>1 bounds the fan-out to N
//	            cells and replays each on the set-sharded engine with N
//	            workers, -1 fans the cells out and lets each pick its
//	            engine adaptively (cache.NewAutoEngine). The output is
//	            identical for every setting.
//	-metrics X  dump a pipeline metrics snapshot on exit (internal/obs)
//	-pprof P    write P.cpu.pprof and P.heap.pprof profiles
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/resilience-models/dvf/internal/experiments"
	"github.com/resilience-models/dvf/internal/obs"
)

func main() {
	engine := flag.String("engine", "replay", "verification engine: replay or analytic")
	csvOut := flag.Bool("csv", false, "emit CSV instead of the table")
	workers := flag.Int("workers", 0, "simulation workers (0 = parallel default, 1 = sequential, -1 = auto engine)")
	o := obs.AddFlags(nil)
	flag.Parse()
	defer o.Start()()
	switch *engine {
	case "replay":
		res, err := experiments.RunFig4Obs(*workers, o.Sink(), o.Tracer())
		if err != nil {
			log.Fatal(err)
		}
		if *csvOut {
			if err := res.WriteCSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Print(res.Render())
	case "analytic":
		res, err := experiments.RunAnalyticDiff(nil, *workers, o.Sink(), o.Tracer())
		if err != nil {
			log.Fatal(err)
		}
		if *csvOut {
			if err := res.WriteCSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Print(res.Render())
		}
		// The live differential is a gate, not just a report: any structure
		// outside the documented tolerance is a hard failure.
		if err := res.Check(); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("dvf-verify: unknown -engine %q (want replay or analytic)", *engine)
	}
}
