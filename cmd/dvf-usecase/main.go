// Command dvf-usecase regenerates the two use cases of Section V of the
// DVF paper: the CG-vs-PCG algorithm-optimization study (Figure 6) and the
// ECC protection trade-off (Figure 7).
//
//	-case cgpcg|ecc|all   which use case to run
//	-csv                  emit machine-readable CSV instead of the tables
//	-plot                 draw the figures as ASCII charts
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/resilience-models/dvf/internal/experiments"
	"github.com/resilience-models/dvf/internal/obs"
	"github.com/resilience-models/dvf/internal/plot"
)

func main() {
	which := flag.String("case", "all", "use case to run: cgpcg, ecc or all")
	csvOut := flag.Bool("csv", false, "emit CSV instead of the tables")
	plotOut := flag.Bool("plot", false, "draw the figures as ASCII charts")
	o := obs.AddFlags(nil)
	flag.Parse()
	defer o.Start()()
	if *which == "cgpcg" || *which == "all" {
		res, err := experiments.RunFig6Obs(0, o.Sink(), o.Tracer())
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case *csvOut:
			if err := res.WriteCSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
		case *plotOut:
			out, err := plotFig6(res)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(out)
		default:
			fmt.Print(res.Render())
		}
	}
	if *which == "ecc" || *which == "all" {
		res, err := experiments.RunFig7Obs(o.Sink(), o.Tracer())
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case *csvOut:
			if err := res.WriteCSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
		case *plotOut:
			out, err := plotFig7(res)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(out)
		default:
			fmt.Print(res.Render())
		}
	}
}

// plotFig6 draws the CG-vs-PCG DVF curves on a log axis, the paper's
// Figure 6 presentation.
func plotFig6(res *experiments.Fig6Result) (string, error) {
	var xs, cg, pcg []float64
	for _, pt := range res.Points {
		xs = append(xs, float64(pt.N))
		cg = append(cg, pt.CGDVF)
		pcg = append(pcg, pt.PCGDVF)
	}
	return plot.Render(plot.Config{
		Title:  "Figure 6: CG vs PCG",
		XLabel: "problem size n",
		YLabel: "DVF (log)",
		LogY:   true,
	},
		plot.Series{Name: "CG", X: xs, Y: cg},
		plot.Series{Name: "PCG", X: xs, Y: pcg},
	)
}

// plotFig7 draws the ECC degradation sweep, one curve per mechanism.
func plotFig7(res *experiments.Fig7Result) (string, error) {
	var series []plot.Series
	for _, s := range res.Series {
		var xs, ys []float64
		for _, pt := range s.Points {
			xs = append(xs, pt.DegradationPct)
			ys = append(ys, pt.DVF)
		}
		series = append(series, plot.Series{Name: s.Mechanism.Name, X: xs, Y: ys})
	}
	return plot.Render(plot.Config{
		Title:  "Figure 7: impact of ECC on DVF",
		XLabel: "performance degradation (%)",
		YLabel: "DVF (log)",
		LogY:   true,
	}, series...)
}
