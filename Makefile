# Development gates. `make check` is the full pre-merge gate; the
# tier-1 gate in ROADMAP.md (`go build ./... && go test ./...`) is the
# subset run by automation.
#
#   make check        fmt-check + vet + lint + build + tests + race
#                     detector + bench smoke + fuzz smoke
#   make fmt-check    fail if any file is not gofmt-clean
#   make lint         run the repo's own static-analysis suite
#                     (cmd/dvf-lint) over every package; LINTFLAGS
#                     narrows it, e.g. LINTFLAGS='-only nilsink,determinism'
#   make lint-sarif   same run with -timings, also writing
#                     dvf-lint.sarif (per-checker cost table included
#                     in the run properties) for upload
#   make lint-fix-check  gate on the -fix contract: apply fixes to a
#                     dirty fixture copy, then require a clean re-run,
#                     gofmt-clean files and a passing build
#   make test         the tier-1 test run
#   make race         full suite under the race detector (slow: the
#                     experiments package replays every figure)
#   make bench-smoke  one iteration of the sequential-vs-sharded replay
#                     benchmarks, as a compile-and-run sanity check
#   make bench        full benchmark suite (regenerates every figure)
#   make fuzz-smoke   bounded fuzz of the sharded-vs-sequential cache
#                     differential and the v1 trace codec round-trip;
#                     FUZZTIME bounds each target (default 10s)
#   make fuzz-smoke-v2  bounded fuzz of the v2 (columnar) trace codec:
#                     encode/decode round-trip incl. misalignment and
#                     truncation, and v1-vs-v2 record equivalence
#   make trace-smoke  record a fig4 timeline with -trace-out and
#                     schema-validate it with dvf-flame -check
#   make analytic-smoke  the analytic engine's red/green signal: the live
#                     analytic-vs-simulator differential (hard-fails on
#                     any tolerance breach), a trace-free CLI pass over
#                     every bundled cache, and a bounded fuzz of the
#                     solver against the sequential simulator
#   make extract-smoke  dvf-extract -diff over all four kernels in both
#                     geometries: the static extractor must reproduce
#                     every hand-written descriptor exactly
#   make serve-smoke  end-to-end service gate: ephemeral dvf-serve
#                     instance, loadtest client fleet over real HTTP,
#                     non-empty /metrics + /statusz, the throughput bar
#                     (SERVE_MIN_EPM evals/min) and a graceful drain;
#                     writes the latency digest to SERVE_LATENCY

GO ?= go
FUZZTIME ?= 10s
LINTFLAGS ?=

.PHONY: check fmt-check vet lint lint-sarif lint-fix-check build test race bench-smoke bench fuzz-smoke fuzz-smoke-v2 trace-smoke analytic-smoke extract-smoke serve-smoke

check: fmt-check vet lint lint-fix-check build test race bench-smoke fuzz-smoke fuzz-smoke-v2 trace-smoke analytic-smoke extract-smoke serve-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/dvf-lint $(LINTFLAGS) ./...

# SARIF variant for CI: the report is written before the exit status is
# decided, so a failing run still produces an uploadable file. -timings
# prints the per-checker cost table to the job log and records it in
# the SARIF run properties, so checker-cost drift is visible in CI.
lint-sarif:
	$(GO) run ./cmd/dvf-lint -timings -sarif dvf-lint.sarif $(LINTFLAGS) ./...

# The -fix contract, end to end on the checked-in dirty fixture: build
# the linter, fix a scratch copy, and require the re-run to be clean,
# the files gofmt-idempotent and the fixture module to still build.
lint-fix-check:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	cp -r cmd/dvf-lint/testdata/fixture/. "$$tmp"/ && \
	$(GO) build -o "$$tmp"/dvf-lint ./cmd/dvf-lint && \
	(cd "$$tmp" && ./dvf-lint -fix ./...) && \
	(cd "$$tmp" && ./dvf-lint ./...) && \
	out=$$(gofmt -l "$$tmp"/internal) && \
	if [ -n "$$out" ]; then echo "gofmt needed after -fix:"; echo "$$out"; exit 1; fi && \
	(cd "$$tmp" && $(GO) build ./...) && \
	echo "lint-fix-check: fix round-trip clean"

build:
	$(GO) build ./...

# TESTFLAGS threads extra `go test` flags through, e.g.
# `make test TESTFLAGS=-shuffle=on` (what CI runs, to keep the suite
# order-independent).
TESTFLAGS ?=
test:
	$(GO) test $(TESTFLAGS) ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench=Sharded -benchtime=1x .

bench:
	$(GO) test -run '^$$' -bench=. -benchmem .

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzShardedVsSequential$$' -fuzztime $(FUZZTIME) ./internal/cache
	$(GO) test -run '^$$' -fuzz '^FuzzEncodeDecode$$' -fuzztime $(FUZZTIME) ./internal/trace

fuzz-smoke-v2:
	$(GO) test -run '^$$' -fuzz '^FuzzEncodeDecodeV2$$' -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzV1V2RoundTrip$$' -fuzztime $(FUZZTIME) ./internal/trace

TRACEOUT ?= trace-out
trace-smoke:
	mkdir -p $(TRACEOUT)
	$(GO) run ./cmd/dvf-verify -workers 2 -csv -trace-out $(TRACEOUT)/fig4.json > /dev/null
	$(GO) run ./cmd/dvf-flame -check $(TRACEOUT)/fig4.json

analytic-smoke:
	$(GO) run ./cmd/dvf-verify -engine analytic
	$(GO) run ./cmd/dvf-trace -engine analytic -kernel CG -all > /dev/null
	$(GO) test -run '^$$' -fuzz '^FuzzAnalyticVsSimulator$$' -fuzztime $(FUZZTIME) ./internal/analytic

# The extraction wall: static extraction of every kernel must agree with
# the hand-written descriptors in both geometries, or the build is red —
# same signal the patterndrift checker raises, but runnable standalone.
extract-smoke:
	$(GO) run ./cmd/dvf-extract -diff -suite verification
	$(GO) run ./cmd/dvf-extract -diff -suite profiling

# The service wall: dvf-serve -smoke is fully self-contained (in-process
# server on an ephemeral port, real HTTP load, /metrics and /statusz
# probes, graceful drain) and fails unless sustained throughput clears
# SERVE_MIN_EPM analytic evaluations per minute. The latency histogram
# digest lands in SERVE_LATENCY; CI uploads it as an artifact.
SERVE_MIN_EPM ?= 100000
SERVE_LATENCY ?= serve-latency.json
serve-smoke:
	$(GO) run ./cmd/dvf-serve -smoke -min-epm $(SERVE_MIN_EPM) -out $(SERVE_LATENCY)
