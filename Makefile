# Development gates. `make check` is the full pre-merge gate; the
# tier-1 gate in ROADMAP.md (`go build ./... && go test ./...`) is the
# subset run by automation.
#
#   make check        vet + build + tests + race detector + bench smoke
#   make test         the tier-1 test run
#   make race         full suite under the race detector (slow: the
#                     experiments package replays every figure)
#   make bench-smoke  one iteration of the sequential-vs-sharded replay
#                     benchmarks, as a compile-and-run sanity check
#   make bench        full benchmark suite (regenerates every figure)

GO ?= go

.PHONY: check vet build test race bench-smoke bench

check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench=Sharded -benchtime=1x .

bench:
	$(GO) test -run '^$$' -bench=. -benchmem .
