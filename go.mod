module github.com/resilience-models/dvf

go 1.22
