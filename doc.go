// Package dvf is a from-scratch Go reproduction of "Quantitatively
// Modeling Application Resilience with the Data Vulnerability Factor"
// (Yu, Li, Mittal, Vetter — SC 2014).
//
// The repository implements the paper's full stack: the DVF resilience
// metric, the CGPMAC analytical memory-access models for four access
// pattern classes, an extended-Aspen modeling language, a set-associative
// LRU cache simulator with per-data-structure accounting, a source-level
// trace instrumentation layer replacing Pin, the six Table II numerical
// kernels (plus PCG), and harnesses regenerating every figure and table
// of the paper's evaluation.
//
// Start at internal/core for the façade API, or run the command-line
// tools: dvf-verify (Figure 4), dvf-profile (Figure 5), dvf-usecase
// (Figures 6 and 7) and aspenc (the DSL compiler). The root-level
// benchmarks in bench_test.go regenerate each experiment under
// `go test -bench`.
package dvf
