package dvf_test

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benchmarks for the design choices called out in DESIGN.md.
// Each benchmark regenerates its experiment end to end and reports the
// experiment's headline quantity as a custom metric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/resilience-models/dvf/internal/cache"
	"github.com/resilience-models/dvf/internal/dvf"
	"github.com/resilience-models/dvf/internal/experiments"
	"github.com/resilience-models/dvf/internal/kernels"
	"github.com/resilience-models/dvf/internal/patterns"
	"github.com/resilience-models/dvf/internal/trace"
)

// BenchmarkFig4Verification regenerates Figure 4: the six kernels traced
// through the cache simulator against their CGPMAC estimates, on both
// verification caches. The reported metric is the worst model error.
func BenchmarkFig4Verification(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		maxErr = res.MaxAbsErrorPct()
	}
	b.ReportMetric(maxErr, "max-error-%")
}

// BenchmarkFig4PerKernel runs one verification cell per sub-benchmark.
func BenchmarkFig4PerKernel(b *testing.B) {
	for _, k := range kernels.VerificationSuite() {
		k := k
		b.Run(k.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.VerifyKernel(k, cache.Small); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Profiling regenerates Figure 5: DVF profiling of the six
// kernels at the Table VI sizes over the four profiling caches. The
// metric is the application DVF of the most vulnerable kernel (MC).
func BenchmarkFig5Profiling(b *testing.B) {
	var mc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5()
		if err != nil {
			b.Fatal(err)
		}
		mc, err = res.Lookup("MC", cache.Profile16KB.Name, "DVF_a")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mc, "DVFa-MC-16KB")
}

// BenchmarkFig6CGvsPCG regenerates Figure 6: the CG-vs-PCG DVF comparison
// across problem sizes. The metric is the crossover size.
func BenchmarkFig6CGvsPCG(b *testing.B) {
	var crossover int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		crossover = res.CrossoverSize()
	}
	b.ReportMetric(float64(crossover), "crossover-n")
}

// BenchmarkFig7ECC regenerates Figure 7: the ECC degradation sweep. The
// metric is the degradation at which SECDED's DVF is minimized.
func BenchmarkFig7ECC(b *testing.B) {
	var atPct float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		best, err := dvf.MinPoint(res.Series[0].Points)
		if err != nil {
			b.Fatal(err)
		}
		atPct = best.DegradationPct
	}
	b.ReportMetric(atPct, "SECDED-min-at-%")
}

// BenchmarkTableIVCaches measures the simulator's reference throughput on
// each Table IV geometry (the substrate cost behind Figure 4).
func BenchmarkTableIVCaches(b *testing.B) {
	configs := append(cache.VerificationConfigs(), cache.ProfilingConfigs()...)
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			sim, err := cache.NewSimulator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Access(uint64(i*64)%(64<<20), 8, i&7 == 0, 1)
			}
		})
	}
}

// BenchmarkTableVKernels runs each verification-size kernel fully traced
// (the workload column of Table V).
func BenchmarkTableVKernels(b *testing.B) {
	for _, k := range kernels.VerificationSuite() {
		k := k
		b.Run(k.Name(), func(b *testing.B) {
			sink := trace.ConsumerFunc(func(trace.Ref, int32) {})
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(sink); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableVIKernels runs each profiling-size kernel untraced (the
// workload column of Table VI, as consumed by Figure 5).
func BenchmarkTableVIKernels(b *testing.B) {
	for _, k := range kernels.ProfilingSuite() {
		k := k
		b.Run(k.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableVIIProtection sweeps each Table VII mechanism over the
// Figure 7 degradation axis.
func BenchmarkTableVIIProtection(b *testing.B) {
	degr := experiments.Fig7Degradations()
	for _, mech := range dvf.TableVII() {
		mech := mech
		b.Run(mech.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mech.Sweep(1e-5, 1<<20, 1e6, degr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedReplay compares the sequential simulator against the
// set-sharded parallel engine replaying the same prerecorded trace, for
// the two trace-heaviest kernels (CG and MG). Each kernel is recorded
// once; every sub-benchmark then replays the identical reference stream
// through cache.NewEngine at a different worker count, so the numbers
// isolate the engine's cost from trace generation. workers=1 is the
// sequential baseline; on a multi-core machine the sharded variants
// should scale with the worker count (the engines are proven
// bit-identical, so this is purely a throughput comparison).
func BenchmarkShardedReplay(b *testing.B) {
	cases := []struct {
		name string
		k    kernels.Kernel
	}{
		{"CG", kernels.NewCG(700, 5)},
		{"MG", kernels.NewMG(32, 2)},
	}
	workerCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, c := range cases {
		rec := &trace.Recorder{}
		if _, err := c.k.Run(rec); err != nil {
			b.Fatal(err)
		}
		for _, w := range workerCounts {
			w := w
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng, err := cache.NewEngine(cache.Profile16KB, w)
					if err != nil {
						b.Fatal(err)
					}
					for j, r := range rec.Refs {
						eng.Access(r.Addr, r.Size, r.Write, cache.StructID(rec.Owners[j]))
					}
					eng.Drain()
					eng.Close()
				}
				b.ReportMetric(float64(rec.Len())*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
			})
		}
	}
}

// --- Ablations (DESIGN.md: design choices worth quantifying) ---

// BenchmarkAblationNBTreeModel compares the paper's plain uniform random
// model with the frequency-weighted extension on the N-body tree,
// reporting each variant's error against the cache simulator.
func BenchmarkAblationNBTreeModel(b *testing.B) {
	for _, plain := range []bool{true, false} {
		name := "weighted"
		if plain {
			name = "plain-random"
		}
		b.Run(name, func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				k := &kernels.NB{N: 1000, Theta: 0.5, Seed: 1, PlainRandom: plain}
				rows, err := experiments.VerifyKernel(k, cache.Small)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Structure == "T" {
						errPct = r.ErrorPct()
					}
				}
			}
			b.ReportMetric(errPct, "model-error-%")
		})
	}
}

// BenchmarkAblationReusePlacement compares the contiguous and Bernoulli
// set-placement assumptions in the reuse model (Equation 8 vs the
// round-robin refinement).
func BenchmarkAblationReusePlacement(b *testing.B) {
	for _, placement := range []patterns.Placement{patterns.PlacementContiguous, patterns.PlacementBernoulli} {
		placement := placement
		b.Run(placement.String(), func(b *testing.B) {
			var nha float64
			r := patterns.Reuse{TargetBytes: 4096, OtherBytes: 4096, Reuses: 100, Placement: placement}
			for i := 0; i < b.N; i++ {
				v, err := r.MemoryAccesses(cache.Small)
				if err != nil {
					b.Fatal(err)
				}
				nha = v
			}
			b.ReportMetric(nha, "N_ha")
		})
	}
}

// BenchmarkAblationTemplateDistance compares the paper's raw index
// distance against the LRU stack distance in the template model.
func BenchmarkAblationTemplateDistance(b *testing.B) {
	blocks := make([]int64, 0, 1<<15)
	for pass := 0; pass < 4; pass++ {
		for blk := int64(0); blk < 1<<13; blk++ {
			blocks = append(blocks, blk, blk, blk) // triple-touch per visit
		}
	}
	for _, raw := range []bool{false, true} {
		raw := raw
		name := "stack-distance"
		if raw {
			name = "raw-distance"
		}
		b.Run(name, func(b *testing.B) {
			var misses float64
			tpl := patterns.Template{Blocks: blocks, DistanceRaw: raw}
			for i := 0; i < b.N; i++ {
				v, err := tpl.MemoryAccesses(cache.Small)
				if err != nil {
					b.Fatal(err)
				}
				misses = v
			}
			b.ReportMetric(misses, "misses")
		})
	}
}

// BenchmarkStoreVerification runs the write-side model validation: modeled
// writebacks vs the simulator for the kernels with uniform write patterns.
func BenchmarkStoreVerification(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		maxErr = 0
		for _, k := range experiments.StoreModelers() {
			for _, cfg := range cache.VerificationConfigs() {
				rows, err := experiments.VerifyStores(k, cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					e := r.ErrorPct()
					if e < 0 {
						e = -e
					}
					if e > maxErr {
						maxErr = e
					}
				}
			}
		}
	}
	b.ReportMetric(maxErr, "max-wb-error-%")
}

// BenchmarkBaselineFaultInjection measures the traditional methodology the
// paper argues against: a statistical fault-injection campaign on the VM
// kernel, reporting how much more it costs than the model-based analysis
// (the Section I "prohibitively expensive" claim, quantified).
func BenchmarkBaselineFaultInjection(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunBaseline(kernels.NewVM(2000), 100, cache.Large)
		if err != nil {
			b.Fatal(err)
		}
		ratio = cmp.CostRatio()
	}
	b.ReportMetric(ratio, "injection-cost-x")
}

// BenchmarkHierarchyVsLLC quantifies the paper's LLC-only modeling
// assumption: main-memory loads of a 2-level hierarchy vs a standalone
// last-level simulation on a streaming workload.
func BenchmarkHierarchyVsLLC(b *testing.B) {
	var gapPct float64
	for i := 0; i < b.N; i++ {
		h, err := cache.NewHierarchy(
			cache.Config{Name: "l1", Associativity: 2, Sets: 32, LineSize: 16},
			cache.Small,
		)
		if err != nil {
			b.Fatal(err)
		}
		alone, err := cache.NewSimulator(cache.Small)
		if err != nil {
			b.Fatal(err)
		}
		for pass := 0; pass < 3; pass++ {
			for off := uint64(0); off < 64<<10; off += 8 {
				h.Access(off, 8, false, 1)
				alone.Access(off, 8, false, 1)
			}
		}
		full := float64(h.LastLevel().StructStats(1).Misses)
		ref := float64(alone.StructStats(1).Misses)
		gapPct = (full - ref) / ref * 100
	}
	b.ReportMetric(gapPct, "llc-gap-%")
}

// BenchmarkAblationCGTemplateP compares CG's closed-form reuse model for
// the direction vector p against the pseudocode-template replay.
func BenchmarkAblationCGTemplateP(b *testing.B) {
	for _, tmpl := range []bool{false, true} {
		tmpl := tmpl
		name := "closed-form"
		if tmpl {
			name = "template-replay"
		}
		b.Run(name, func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				// The Table V verification size: at n=500 one matrix row
				// plus p exactly fills the small cache, exposing the
				// element-interleaving leak the closed form cannot see.
				k := &kernels.CG{N: 500, MaxIters: 10, TemplateP: tmpl}
				rows, err := experiments.VerifyKernel(k, cache.Small)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Structure == "p" {
						errPct = r.ErrorPct()
					}
				}
			}
			b.ReportMetric(errPct, "model-error-%")
		})
	}
}
